// Package sim provides a discrete-event simulation kernel with virtual
// time and goroutine-based actors.
//
// The kernel lets ordinary Go code — daemons, schedulers, libraries —
// run as concurrent goroutines while all time-bearing operations
// (sleeps, message latencies, timeouts) advance a shared virtual clock
// instead of the wall clock. A simulation therefore executes in
// microseconds of real time yet reports the sub-second protocol
// latencies the modeled system would exhibit.
//
// # Actor model
//
// Every goroutine that participates in a simulation must be spawned
// through Simulation.Go (or be the main function passed to Run). The
// kernel tracks how many actors are runnable; when all of them are
// parked — sleeping or waiting on a Gate — the controller advances the
// clock to the earliest pending event and wakes its owners. If all
// actors are parked and no event is pending, the simulation is
// deadlocked and Run returns an error naming the blocked actors.
//
// # Discipline
//
// Actors must communicate only through sim-aware primitives (Sleep,
// Gate, and anything layered on them such as netsim mailboxes). An
// actor must never park while holding a lock that the waking actor
// needs. Callbacks scheduled with At run on the controller goroutine
// and must not block.
package sim

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/audit"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// ErrDeadlock is wrapped by the error Run returns when every actor is
// parked and no timer event is pending.
var ErrDeadlock = errors.New("sim: deadlock")

// ErrDeadline is wrapped by the error Run returns when virtual time
// passes the cap set with SetDeadline — the runaway-simulation guard.
var ErrDeadline = errors.New("sim: virtual-time deadline exceeded")

// Simulation owns a virtual clock and the set of actors advancing it.
// The zero value is not usable; call New.
type Simulation struct {
	mu   sync.Mutex
	cond *sync.Cond // signaled when running drops to zero or main finishes
	now  time.Duration
	// nowA mirrors now so Now() is lock-free: the hot paths (netsim
	// sends, tracer timestamps, scheduler priorities) read the clock
	// far more often than the controller advances it.
	nowA     atomic.Int64
	running  int // actors currently runnable
	actors   int // live actors (runnable or parked)
	events   eventQueue
	batch    []event // controller scratch, reused across clock advances
	seq      uint64
	parked   map[string]int // actor name -> count, for deadlock diagnostics
	deadline time.Duration  // virtual-time cap; 0 = unlimited
	mainSet  bool
	mainEnd  bool
	halted   bool

	panicMu  sync.Mutex
	panicked []string

	// tracer is the active observability sink; nil (the default)
	// disables tracing. Atomic so the per-message and per-request hot
	// paths read it without taking s.mu.
	tracer atomic.Pointer[trace.Tracer]

	// telem is the active telemetry registry (nil disables it), and
	// kernelInst the kernel's own instruments, both resolved once in
	// SetTelemetry. Atomics for the same reason as tracer.
	telem      atomic.Pointer[telemetry.Registry]
	kernelInst atomic.Pointer[kernelInstruments]

	// aud is the active flight recorder (nil disables it); components
	// resolve it at construction like the tracer and registry.
	aud atomic.Pointer[audit.Recorder]

	// dispatched counts events the controller has released since the
	// kernel was created (or last recycled through the pool). Unlike
	// the sim.dispatches telemetry counter it is always on, so a CLI
	// can divide it by host wall time for an events/sec throughput
	// figure without installing a registry.
	dispatched atomic.Uint64
}

// kernelInstruments are the kernel's own live metrics: how many
// events the controller has dispatched and how deep the pending-event
// queue is at each advance.
type kernelInstruments struct {
	dispatches *telemetry.Counter
	queueDepth *telemetry.Gauge
}

// New returns an empty simulation at virtual time zero.
func New() *Simulation {
	s := &Simulation{parked: make(map[string]int)}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// SetDeadline caps virtual time: Run returns ErrDeadline instead of
// advancing past d. Zero (the default) means unlimited. Use it as a
// guard against runaway scenarios (for example a periodic daemon
// keeping a simulation alive when the condition under test never
// occurs).
func (s *Simulation) SetDeadline(d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.deadline = d
}

// SetTracer installs (or, with nil, removes) the observability
// tracer and binds its clock to this simulation's virtual time. Every
// component layered on the simulation reads it through Tracer.
func (s *Simulation) SetTracer(t *trace.Tracer) {
	t.SetClock(s.Now)
	s.tracer.Store(t)
	s.bridgeTraceDrops()
}

// Tracer returns the active tracer, or nil when tracing is disabled.
// All trace.Tracer methods are nil-safe, so callers instrument
// unconditionally: s.Tracer().Start(...) is a no-op without a tracer.
func (s *Simulation) Tracer() *trace.Tracer {
	return s.tracer.Load()
}

// SetTelemetry installs (or, with nil, removes) the live-metrics
// registry. Components resolve their instruments from it at
// construction time; the kernel itself contributes the "sim.*"
// instruments (event dispatch rate, event-queue depth).
func (s *Simulation) SetTelemetry(reg *telemetry.Registry) {
	s.telem.Store(reg)
	if reg == nil {
		s.kernelInst.Store(nil)
		return
	}
	s.kernelInst.Store(&kernelInstruments{
		dispatches: reg.Counter("sim.dispatches"),
		queueDepth: reg.Gauge("sim.queue_depth"),
	})
	s.bridgeTraceDrops()
}

// bridgeTraceDrops connects the tracer's ring-buffer drop counter to
// the telemetry registry once both sinks are installed, so dropped
// spans surface in dacstat summaries and the Prometheus export
// instead of only the trace text summary. Install order does not
// matter: both setters call it.
func (s *Simulation) bridgeTraceDrops() {
	t := s.tracer.Load()
	reg := s.telem.Load()
	if t == nil || reg == nil {
		return
	}
	t.SetDropSink(reg.Counter("trace.dropped_spans"))
}

// Telemetry returns the active registry, or nil when telemetry is
// disabled. A nil registry hands out nil no-op instruments, so
// components resolve handles unconditionally.
func (s *Simulation) Telemetry() *telemetry.Registry {
	return s.telem.Load()
}

// SetAudit installs (or, with nil, removes) the flight recorder and
// binds its event clock to this simulation's virtual time.
func (s *Simulation) SetAudit(r *audit.Recorder) {
	r.SetClock(s.Now)
	s.aud.Store(r)
}

// Audit returns the active flight recorder, or nil when auditing is
// disabled. All audit.Recorder methods are nil-safe, so components
// record state deltas unconditionally.
func (s *Simulation) Audit() *audit.Recorder {
	return s.aud.Load()
}

// Now reports the current virtual time as an offset from the start of
// the simulation. It is safe to call from any goroutine and never
// blocks on the kernel lock.
func (s *Simulation) Now() time.Duration {
	return time.Duration(s.nowA.Load())
}

// Go spawns fn as a new actor. The name is used in deadlock
// diagnostics only. Go may be called before Run or from any actor.
func (s *Simulation) Go(name string, fn func()) {
	s.mu.Lock()
	s.actors++
	s.running++
	s.mu.Unlock()
	go func() {
		defer func() {
			if r := recover(); r != nil {
				s.panicMu.Lock()
				s.panicked = append(s.panicked, fmt.Sprintf("%s: %v", name, r))
				s.panicMu.Unlock()
			}
			s.mu.Lock()
			s.actors--
			s.running--
			if s.running == 0 {
				s.cond.Broadcast()
			}
			s.mu.Unlock()
		}()
		fn()
	}()
}

// wakePool recycles the capacity-1 channels used to wake sleeping
// actors. See pushLocked for the lifecycle argument that makes reuse
// safe.
var wakePool = sync.Pool{New: func() any { return make(chan struct{}, 1) }}

// Sleep parks the calling actor for d of virtual time. A non-positive
// duration returns immediately. Sleep must only be called from an
// actor goroutine.
func (s *Simulation) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	ch := wakePool.Get().(chan struct{})
	s.mu.Lock()
	s.pushLocked(s.now+d, ch, nil)
	s.parkLocked("sleep")
	s.mu.Unlock()
	<-ch
	wakePool.Put(ch)
	s.unparkNote("sleep")
}

// At schedules fn to run at virtual time t (an offset from simulation
// start, clamped to the present). fn executes on the controller
// goroutine and must not block; it may spawn actors, signal gates, and
// schedule further callbacks.
func (s *Simulation) At(t time.Duration, fn func()) {
	s.mu.Lock()
	if t < s.now {
		t = s.now
	}
	s.pushLocked(t, nil, fn)
	s.mu.Unlock()
}

// After schedules fn to run d of virtual time from now. See At.
func (s *Simulation) After(d time.Duration, fn func()) {
	s.mu.Lock()
	t := s.now + d
	if d < 0 {
		t = s.now
	}
	s.pushLocked(t, nil, fn)
	s.mu.Unlock()
}

// AfterArg schedules fn(arg) to run d of virtual time from now. It is
// the allocation-free variant of After for hot callers: fn is expected
// to be a long-lived (package-level) function and arg a reusable
// pointer, so scheduling captures no fresh closure. Semantics otherwise
// match After.
func (s *Simulation) AfterArg(d time.Duration, fn func(any), arg any) {
	s.mu.Lock()
	t := s.now + d
	if d < 0 {
		t = s.now
	}
	s.seq++
	s.events.push(event{at: t, seq: s.seq, afn: fn, arg: arg})
	s.mu.Unlock()
}

// Run executes main as the root actor and drives the clock until main
// returns. Other actors may still be parked when Run returns; closing
// their communication primitives (for example netsim mailboxes) lets
// them exit. Run returns an error if the simulation deadlocks or if
// any actor panicked.
func (s *Simulation) Run(main func()) error {
	s.mu.Lock()
	if s.mainSet {
		s.mu.Unlock()
		return errors.New("sim: Run called twice")
	}
	s.mainSet = true
	s.mu.Unlock()

	s.Go("main", func() {
		defer func() {
			s.mu.Lock()
			s.mainEnd = true
			s.cond.Broadcast()
			s.mu.Unlock()
		}()
		main()
	})

	for {
		s.mu.Lock()
		for s.running > 0 && !s.mainEnd {
			s.cond.Wait()
		}
		if s.mainEnd {
			s.halted = true
			s.mu.Unlock()
			return s.panicErr()
		}
		if s.events.len() == 0 {
			blocked := s.blockedLocked()
			s.halted = true
			s.mu.Unlock()
			return fmt.Errorf("%w at %v: parked actors: %s", ErrDeadlock, s.now, blocked)
		}
		// Advance to the earliest event time and release every event
		// due at that instant. Each released event counts as runnable
		// before the lock drops so the controller cannot advance past
		// a wake that has not landed yet. The batch buffer is owned by
		// the controller and reused across advances; it is cleared
		// after dispatch so it never pins wake channels or closures.
		t := s.events.nextAt()
		if s.deadline > 0 && t > s.deadline {
			s.halted = true
			s.mu.Unlock()
			return fmt.Errorf("%w: next event at %v, cap %v", ErrDeadline, t, s.deadline)
		}
		batch := s.events.popBatch(s.batch[:0])
		s.batch = batch
		s.now = t
		s.nowA.Store(int64(t))
		s.dispatched.Add(uint64(len(batch)))
		if ki := s.kernelInst.Load(); ki != nil {
			ki.dispatches.Add(int64(len(batch)))
			ki.queueDepth.Set(float64(s.events.len()))
		}
		s.mu.Unlock()

		// Dispatch the batch one event at a time, waiting for the
		// released work — the woken actor plus anything it wakes in
		// turn — to park before releasing the next event. Seq order
		// is deterministic, so this serialization pins the
		// interleaving of same-instant actors: two actors due at one
		// instant can no longer race each other to the event queue,
		// which would make the (at, seq) order of their *next* sends
		// depend on host scheduling. Once main has finished the wait
		// degenerates and the rest of the batch is released eagerly,
		// matching the at-halt semantics of plain dispatch.
		for i, ev := range batch {
			// Each event takes its running slot only when released,
			// so the between-events quiescence wait below sees the
			// undispatched remainder of the batch as idle.
			s.mu.Lock()
			s.running++
			s.mu.Unlock()
			if ev.wake != nil {
				ev.wake <- struct{}{} // ownership of the running slot passes to the woken actor
			} else {
				if ev.afn != nil {
					ev.afn(ev.arg)
				} else {
					ev.fn()
				}
				s.mu.Lock()
				s.running--
				if s.running == 0 {
					s.cond.Broadcast()
				}
				s.mu.Unlock()
			}
			if i == len(batch)-1 {
				break // the top of the outer loop performs this wait
			}
			s.mu.Lock()
			for s.running > 0 && !s.mainEnd {
				s.cond.Wait()
			}
			s.mu.Unlock()
		}
		clear(s.batch)
		s.batch = s.batch[:0]
	}
}

// simPool recycles halted kernels so trial runners (cluster.Run and
// the figure loops in internal/core) reuse the event queue, batch
// buffer, and diagnostics map across trials instead of reallocating
// them per trial.
var simPool = sync.Pool{New: func() any { return New() }}

// Acquire returns a kernel from the pool — either a fresh one or a
// reset, previously released one. Pooled reuse affects only memory: a
// reacquired kernel starts at virtual time zero with sequence zero, so
// simulations behave identically whether or not the kernel was
// recycled.
func Acquire() *Simulation {
	return simPool.Get().(*Simulation)
}

// Release returns a halted kernel to the pool. It waits for actors
// woken during teardown to finish exiting (a bounded wait: the last
// exiting actor broadcasts); if any actor is still parked after that —
// a leaked goroutine that would observe the next simulation — the
// kernel is simply not pooled and the garbage collector reclaims it.
// Release is a no-op before Run has returned.
func (s *Simulation) Release() {
	s.mu.Lock()
	if !s.halted {
		s.mu.Unlock()
		return
	}
	for s.running > 0 {
		s.cond.Wait()
	}
	idle := s.actors == 0
	s.mu.Unlock()
	if !idle {
		return
	}
	s.reset()
	simPool.Put(s)
}

// reset restores a drained kernel to its initial state while keeping
// allocated capacity. Callers guarantee no goroutine references s.
func (s *Simulation) reset() {
	s.now = 0
	s.nowA.Store(0)
	s.seq = 0
	s.deadline = 0
	s.mainSet = false
	s.mainEnd = false
	s.halted = false
	// Pending events at halt (periodic timers, lazily cancelled gate
	// expirations) are dropped along with their closures.
	clear(s.events.heap)
	s.events.heap = s.events.heap[:0]
	clear(s.events.lane)
	s.events.lane = s.events.lane[:0]
	clear(s.batch)
	s.batch = s.batch[:0]
	clear(s.parked)
	s.panicked = nil
	s.tracer.Store(nil)
	s.telem.Store(nil)
	s.kernelInst.Store(nil)
	s.aud.Store(nil)
	s.dispatched.Store(0)
}

// Dispatches reports how many events the controller has released so
// far. It is safe to call from any goroutine, including after Run has
// returned — the denominator-free half of an events-per-second
// throughput measurement (the caller supplies the wall clock).
func (s *Simulation) Dispatches() uint64 {
	return s.dispatched.Load()
}

// Halted reports whether Run has returned.
func (s *Simulation) Halted() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.halted
}

func (s *Simulation) panicErr() error {
	s.panicMu.Lock()
	defer s.panicMu.Unlock()
	if len(s.panicked) == 0 {
		return nil
	}
	return fmt.Errorf("sim: actor panics: %s", strings.Join(s.panicked, "; "))
}

// parkLocked marks the calling actor idle. Callers hold s.mu.
func (s *Simulation) parkLocked(why string) {
	s.running--
	s.parked[why]++
	if s.running == 0 {
		s.cond.Broadcast()
	}
}

// unparkNote clears the diagnostic note left by parkLocked. The
// running count itself was already transferred by the waker.
func (s *Simulation) unparkNote(why string) {
	s.mu.Lock()
	s.parked[why]--
	if s.parked[why] == 0 {
		delete(s.parked, why)
	}
	s.mu.Unlock()
}

// markRunnable transfers one running slot to an actor about to be
// woken by a Gate signal. Callers must not hold s.mu.
func (s *Simulation) markRunnable() {
	s.mu.Lock()
	s.running++
	s.mu.Unlock()
}

func (s *Simulation) blockedLocked() string {
	var parts []string
	for why, n := range s.parked {
		parts = append(parts, fmt.Sprintf("%s×%d", why, n))
	}
	sort.Strings(parts)
	if len(parts) == 0 {
		return "(none)"
	}
	return strings.Join(parts, ", ")
}

// pushLocked schedules a wake or callback event. Callers hold s.mu.
//
// Wake-channel lifecycle: wake channels come from wakePool and are
// buffered with capacity 1. Each Sleep pushes its channel exactly once,
// and the controller signals it exactly once — a single non-blocking
// token send when the event's instant arrives. The sleeping actor
// returns the channel to the pool only after receiving that token, so a
// pooled channel is always empty when reused and a recycled channel can
// never be signaled on behalf of a previous Sleep: the one token it
// could ever carry was consumed before the channel re-entered the pool.
// (The controller signals by sending a token rather than closing the
// channel precisely so the channel survives reuse.)
func (s *Simulation) pushLocked(at time.Duration, wake chan struct{}, fn func()) {
	s.seq++
	s.events.push(event{at: at, seq: s.seq, wake: wake, fn: fn})
	// A sleeping controller only re-checks after running drops to
	// zero; new events need no extra signal because only running
	// actors (or controller callbacks) create them.
}
