package sim

import (
	"sync"
	"testing"
	"time"
)

func TestGroupWaitJoinsChildren(t *testing.T) {
	s := New()
	err := s.Run(func() {
		g := s.NewGroup("test")
		var mu sync.Mutex
		done := 0
		for i := 0; i < 5; i++ {
			i := i
			g.Go("child", func() {
				s.Sleep(time.Duration(i+1) * 10 * time.Millisecond)
				mu.Lock()
				done++
				mu.Unlock()
			})
		}
		g.Wait()
		mu.Lock()
		defer mu.Unlock()
		if done != 5 {
			t.Errorf("done = %d", done)
		}
		if got := s.Now(); got != 50*time.Millisecond {
			t.Errorf("joined at %v, want 50ms (children overlap)", got)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestGroupWaitEmpty(t *testing.T) {
	s := New()
	err := s.Run(func() {
		g := s.NewGroup("empty")
		g.Wait() // no children: returns immediately
		if s.Now() != 0 {
			t.Errorf("empty wait advanced time to %v", s.Now())
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestGroupReusableAfterWait(t *testing.T) {
	s := New()
	err := s.Run(func() {
		g := s.NewGroup("reuse")
		g.Go("a", func() { s.Sleep(time.Millisecond) })
		g.Wait()
		g.Go("b", func() { s.Sleep(time.Millisecond) })
		g.Wait()
		if got := s.Now(); got != 2*time.Millisecond {
			t.Errorf("now = %v", got)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}
