package sim

import "sync"

// Group is the simulation-aware analogue of sync.WaitGroup for
// fork-join parallelism inside an actor: children spawned with Go are
// proper actors, and Wait parks the caller without stalling the
// virtual clock.
type Group struct {
	s    *Simulation
	mu   sync.Mutex
	gate *Gate
	n    int
}

// NewGroup returns an empty group.
func (s *Simulation) NewGroup(name string) *Group {
	return &Group{s: s, gate: s.NewGate("group:" + name)}
}

// Go runs fn as a child actor tracked by the group.
func (g *Group) Go(name string, fn func()) {
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
	g.s.Go(name, func() {
		defer func() {
			g.mu.Lock()
			g.n--
			g.mu.Unlock()
			g.gate.Broadcast()
		}()
		fn()
	})
}

// Wait parks the caller until every child spawned so far has
// finished.
func (g *Group) Wait() {
	g.mu.Lock()
	for g.n > 0 {
		g.gate.Wait(&g.mu)
	}
	g.mu.Unlock()
}
