package core

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/service"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// The serve experiment is the online-service view of the system: a
// resident cluster instance (internal/service) absorbing an open-loop
// Poisson submission stream at a target rate for a virtual duration —
// the load axis of the paper's Figure 8 generalized from a one-shot
// burst to sustained ingest. Each point reports steady-state SLO
// compliance (dynamic-request latency tail, scheduler cycle cost and
// occupancy, queue depth) plus the service's throughput ledger. The
// same points double as the wall-clock sustained-throughput series in
// dacbench: virtual results are byte-identical at every -parallel
// level, while events/sec and jobs/sec are measured host-side.

// ServePoint is one row of the serve figure.
type ServePoint struct {
	ComputeNodes int
	Accelerators int
	Mode         ServerMode
	Rate         float64       // target submission rate, jobs per virtual second
	Horizon      time.Duration // admission window (virtual)
	Submitted    int
	Completed    int
	Makespan     time.Duration // virtual time at drain
	Dispatches   uint64        // kernel events dispatched
	Batches      uint64        // admission batches
	Recycled     uint64        // service ledger records reused
	Purged       uint64        // server job records purged by retention
	Windows      []telemetry.Window
	Compliance   []telemetry.Compliance
}

// ServeSizes is the default compute-node axis of the serve figure.
var ServeSizes = []int{64, 256}

// ServeHorizon is the default virtual admission window per point.
const ServeHorizon = 60 * time.Second

// ServeRate picks the default open-loop rate for a cluster size: a
// quarter job per compute node per second, which loads the scheduler
// without saturating the scaled cost model at any ladder size.
func ServeRate(n int) float64 { return float64(n) / 4 }

// ServeOne runs a single resident instance at one cluster size with a
// custom arrival process — the dacserve CLI's entry point. Zero-value
// ArrivalConfig fields pick the figure defaults: Poisson process, the
// per-size ServeRate, the ladder seed, and a MaxJobs backstop of
// twice the expected admission count (the horizon bounds admission
// either way).
func ServeOne(p cluster.Params, n int, mode ServerMode, ac workload.ArrivalConfig, horizon time.Duration) (ServePoint, error) {
	if n < 1 {
		return ServePoint{}, fmt.Errorf("core: ServeOne size %d", n)
	}
	if horizon <= 0 {
		horizon = ServeHorizon
	}
	tp := scaleParams(p, n)
	if mode == ServerSharded {
		applyShardedParams(&tp, n)
	}
	if ac.Rate <= 0 {
		ac.Rate = ServeRate(n)
	}
	if ac.Seed == 0 {
		ac.Seed = tp.Seed
	}
	if ac.MaxJobs == 0 {
		ac.MaxJobs = int(ac.Rate * horizon.Seconds() * 2)
	}
	src, err := workload.NewArrivals(ac)
	if err != nil {
		return ServePoint{}, fmt.Errorf("core: ServeOne n=%d: %w", n, err)
	}
	rep, err := service.Run(service.Config{
		Cluster:        tp,
		Source:         src,
		Horizon:        horizon,
		ScrapeInterval: SLOScrapeInterval,
	})
	if err != nil {
		return ServePoint{}, fmt.Errorf("core: ServeOne n=%d: %w", n, err)
	}
	return ServePoint{
		ComputeNodes: n,
		Accelerators: tp.Accelerators,
		Mode:         mode,
		Rate:         ac.Rate,
		Horizon:      horizon,
		Submitted:    rep.Submitted,
		Completed:    rep.Completed,
		Makespan:     rep.Makespan,
		Dispatches:   rep.Dispatches,
		Batches:      rep.Stats.Batches,
		Recycled:     rep.Stats.Recycled,
		Purged:       rep.Records.Purged,
		Windows:      rep.Windows,
		Compliance:   rep.Compliance,
	}, nil
}

// Serve runs the online-service experiment across cluster sizes
// (ServeSizes when nil) under the given server mode. rate <= 0 picks
// ServeRate per size; horizon <= 0 uses ServeHorizon. Points fan out
// over the trial worker pool; every figure derived from the reports
// is byte-identical at any parallelism level.
func Serve(p cluster.Params, sizes []int, mode ServerMode, rate float64, horizon time.Duration) ([]ServePoint, error) {
	if len(sizes) == 0 {
		sizes = ServeSizes
	}
	if horizon <= 0 {
		horizon = ServeHorizon
	}
	out := make([]ServePoint, len(sizes))
	err := forEach(len(sizes), func(idx int) error {
		pt, err := ServeOne(p, sizes[idx], mode, workload.ArrivalConfig{Rate: rate}, horizon)
		if err != nil {
			return err
		}
		out[idx] = pt
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// serveCompliant counts met objectives.
func serveCompliant(pt ServePoint) int {
	met := 0
	for _, c := range pt.Compliance {
		if c.Compliant {
			met++
		}
	}
	return met
}

// ServeTable renders the per-size overview of the serve figure.
func ServeTable(points []ServePoint) *metrics.Table {
	t := &metrics.Table{
		Title: "Serve: open-loop online service (sustained ingest, steady-state SLOs)",
		Headers: []string{"compute_nodes", "accelerators", "mode", "rate_jobs_per_s",
			"submitted", "completed", "batches", "recycled", "purged",
			"makespan_ms", "windows", "slo_met"},
	}
	for _, pt := range points {
		t.AddRow(
			fmt.Sprint(pt.ComputeNodes), fmt.Sprint(pt.Accelerators), string(pt.Mode),
			fmt.Sprintf("%.1f", pt.Rate),
			fmt.Sprint(pt.Submitted), fmt.Sprint(pt.Completed),
			fmt.Sprint(pt.Batches), fmt.Sprint(pt.Recycled), fmt.Sprint(pt.Purged),
			metrics.Ms(pt.Makespan), fmt.Sprint(len(pt.Windows)),
			fmt.Sprintf("%d/%d", serveCompliant(pt), len(pt.Compliance)),
		)
	}
	return t
}

// ServeComplianceTable renders the per-objective SLO evaluation of
// the serve figure, reusing the slo experiment's formatting.
func ServeComplianceTable(points []ServePoint) *metrics.Table {
	t := &metrics.Table{
		Title: "Serve SLO compliance (worst observed value and virtual first-breach time)",
		Headers: []string{"compute_nodes", "mode", "objective", "stat",
			"target", "windows", "breaches", "worst", "first_breach_ms", "compliant"},
	}
	for _, pt := range points {
		for _, c := range pt.Compliance {
			first := "-"
			if c.First >= 0 {
				first = metrics.Ms(c.First)
			}
			t.AddRow(
				fmt.Sprint(pt.ComputeNodes), string(pt.Mode), c.Objective.Name,
				string(c.Objective.Stat), c.Objective.Target(),
				fmt.Sprint(c.Windows), fmt.Sprint(c.Breaches),
				sloValue(c.Objective.Stat, c.Worst), first,
				fmt.Sprint(c.Compliant),
			)
		}
	}
	return t
}
