package core

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/prof"
	"repro/internal/trace"
)

// The breakdown experiment's core guarantee: for every job of every
// ladder size, the per-phase attribution sums byte-identically (in
// integer virtual-time nanoseconds) to the job's end-to-end latency —
// and the whole figure is invariant under the trial-pool parallelism
// level, including under the race detector: the sim kernel serializes
// the dispatch of events due at the same virtual instant, so the
// goroutine-scheduler perturbation the race runtime introduces cannot
// reorder same-instant submit/fetch rendezvous.
func TestBreakdownExactAtEveryParallelism(t *testing.T) {
	sizes := []int{8, 32}
	old := Parallelism()
	defer SetParallelism(old)

	var base []BreakdownPoint
	for _, par := range []int{1, 2, 0} { // 0 = all cores
		SetParallelism(par)
		var streams [][]trace.Event
		pts, err := Breakdown(cluster.Default(), sizes, func(n int, events []trace.Event) {
			streams = append(streams, events)
		})
		if err != nil {
			t.Fatalf("Breakdown(par=%d): %v", par, err)
		}
		if base == nil {
			base = pts
		} else if !reflect.DeepEqual(pts, base) {
			t.Fatalf("breakdown differs at parallelism %d:\n%+v\nvs\n%+v", par, pts, base)
		}
		if len(streams) != len(sizes) {
			t.Fatalf("capture hook ran %d times, want %d", len(streams), len(sizes))
		}
		for i, events := range streams {
			profile := prof.Analyze(events)
			if len(profile.Jobs) == 0 || len(profile.Dyns) == 0 {
				t.Fatalf("size %d: %d jobs, %d dyn requests profiled", sizes[i], len(profile.Jobs), len(profile.Dyns))
			}
			if len(profile.Incomplete) != 0 {
				t.Errorf("size %d: incomplete chains: %v", sizes[i], profile.Incomplete)
			}
			for _, j := range profile.Jobs {
				var sum time.Duration
				for _, ph := range j.Phases {
					sum += ph.Dur
				}
				if sum != j.Total() {
					t.Errorf("size %d job %s: phases sum to %v, end-to-end is %v",
						sizes[i], j.ID, sum, j.Total())
				}
			}
			for _, d := range profile.Dyns {
				var sum time.Duration
				for _, ph := range d.Phases {
					sum += ph.Dur
				}
				if sum != d.Total {
					t.Errorf("size %d dyn %d: phases sum to %v, envelope is %v",
						sizes[i], d.ReqID, sum, d.Total)
				}
			}
		}
	}

	for i, pt := range base {
		if pt.Jobs != sizes[i]*JobsPerCN+1 { // trace jobs + probe
			t.Errorf("size %d: attributed %d jobs, want %d", sizes[i], pt.Jobs, sizes[i]*JobsPerCN+1)
		}
		if len(pt.Dyn) != len(prof.DynPhases) || pt.DynTotal <= 0 {
			t.Errorf("size %d: dynamic decomposition missing: %+v", sizes[i], pt)
		}
		if len(pt.Top) == 0 {
			t.Errorf("size %d: no critical-path owners", sizes[i])
		}
	}
}

func TestBreakdownTablesRender(t *testing.T) {
	pts := []BreakdownPoint{{
		ComputeNodes: 8, Accelerators: 64, Jobs: 65,
		Static: []prof.Phase{
			{Name: "queue", Dur: 100 * time.Millisecond},
			{Name: "run", Dur: 2 * time.Second},
		},
		Dyn: []prof.Phase{
			{Name: "dyn.queue", Dur: 80 * time.Millisecond},
			{Name: "dyn.spawn", Dur: 35 * time.Millisecond},
		},
		Total:    3 * time.Second,
		DynTotal: 150 * time.Millisecond,
	}}
	var b strings.Builder
	if err := BreakdownTable(pts).Render(&b); err != nil {
		t.Fatal(err)
	}
	if err := DynBreakdownTable(pts).Render(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"compute_nodes", "queue", "dyn.spawn", "3000.0", "150.0", "-"} {
		if !strings.Contains(b.String(), want) {
			t.Fatalf("tables missing %q:\n%s", want, b.String())
		}
	}
}
