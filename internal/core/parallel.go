package core

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The experiment drivers average many independent trials per data
// point (the paper uses 10). Every trial runs on its own Simulation
// with its own seed, so trials can execute on separate OS threads —
// forEach below fans them out over a bounded worker pool. Determinism
// is preserved by construction: workers write into per-index slots and
// the caller reduces in index order, so the floating-point sums behind
// every reported mean are added in the same order regardless of the
// parallelism level, and figure output stays byte-identical.

var parallelism atomic.Int64

func init() { parallelism.Store(int64(runtime.GOMAXPROCS(0))) }

// SetParallelism caps how many independent trials run concurrently.
// Values below 1 reset to the number of available cores. Figure
// output is identical at every level; 1 forces fully serial execution
// (the determinism tests compare the two).
func SetParallelism(n int) {
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	parallelism.Store(int64(n))
}

// Parallelism reports the current trial concurrency cap.
func Parallelism() int { return int(parallelism.Load()) }

// forEach runs fn(0..n-1) with at most Parallelism() invocations in
// flight. fn must confine its writes to index-owned state. The first
// error by index wins (matching what a serial loop would have
// returned), but unlike a serial loop all n invocations run.
func forEach(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers := Parallelism()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
