package core

import (
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
)

func TestFig7aShape(t *testing.T) {
	pts, err := Fig7a(cluster.Default(), 6, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 6 {
		t.Fatalf("points = %d", len(pts))
	}
	for i, pt := range pts {
		if pt.Accelerators != i+1 {
			t.Errorf("point %d: accelerators = %d", i, pt.Accelerators)
		}
		if pt.Waiting <= pt.Connect {
			t.Errorf("x=%d: waiting %v should dominate connect %v", pt.Accelerators, pt.Waiting, pt.Connect)
		}
		if pt.Total <= 0 || pt.Total > time.Second {
			t.Errorf("x=%d: total %v out of sub-second range", pt.Accelerators, pt.Total)
		}
		if i > 0 && pt.Waiting <= pts[i-1].Waiting {
			t.Errorf("waiting not increasing: x=%d %v vs x=%d %v", pt.Accelerators, pt.Waiting, pts[i-1].Accelerators, pts[i-1].Waiting)
		}
	}
	// Paper magnitude: ~0.3s for 6 statically allocated accelerators.
	if tot := pts[5].Total; tot < 150*time.Millisecond || tot > 500*time.Millisecond {
		t.Errorf("total(6) = %v, want ≈0.3s", tot)
	}
}

func TestFig7bShape(t *testing.T) {
	pts, err := Fig7b(cluster.Default(), 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, pt := range pts {
		if pt.Batch <= pt.MPI {
			t.Errorf("y=%d: batch %v should dominate MPI %v", pt.Accelerators, pt.Batch, pt.MPI)
		}
		if pt.Total > time.Second {
			t.Errorf("y=%d: total %v exceeds sub-second claim", pt.Accelerators, pt.Total)
		}
		if i > 0 {
			if pt.Batch <= pts[i-1].Batch {
				t.Errorf("batch share not increasing at y=%d", pt.Accelerators)
			}
			// MPI share stays roughly constant (parallel spawn).
			diff := pt.MPI - pts[i-1].MPI
			if diff < 0 {
				diff = -diff
			}
			if diff > pt.MPI/3 {
				t.Errorf("MPI share not flat: y=%d %v vs y=%d %v", pt.Accelerators, pt.MPI, pts[i-1].Accelerators, pts[i-1].MPI)
			}
		}
	}
	// Dynamic allocation costs more than static AC_Init (paper
	// contrast between Figures 7(a) and 7(b)).
	static, err := Fig7a(cluster.Default(), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].Total <= static[0].Total {
		t.Errorf("dynamic(1) %v should exceed static init(1) %v", pts[0].Total, static[0].Total)
	}
}

func TestFig8LoadIncreasesWaiting(t *testing.T) {
	pts, err := Fig8(cluster.Default(), []int{0, 16, 20}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].SchedOther != 0 {
		t.Errorf("load 0 should have zero scheduler-other time, got %v", pts[0].SchedOther)
	}
	if pts[1].SchedOther <= 0 {
		t.Errorf("load 16 scheduler-other = %v, want > 0", pts[1].SchedOther)
	}
	if pts[2].Total <= pts[1].Total || pts[1].Total <= pts[0].Total {
		t.Errorf("totals not increasing with load: %v", pts)
	}
	for _, pt := range pts {
		if pt.Service != pts[0].Service {
			t.Errorf("service share should be the load-0 baseline: %+v", pt)
		}
		if pt.Total > 2*time.Second {
			t.Errorf("load %d total %v unreasonably large", pt.Load, pt.Total)
		}
	}
}

func TestFig9Staircase(t *testing.T) {
	pts, err := Fig9(cluster.Default(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 || pts[0].Node != "A" || pts[1].Node != "B" || pts[2].Node != "C" {
		t.Fatalf("points = %+v", pts)
	}
	if !(pts[0].Total < pts[1].Total && pts[1].Total < pts[2].Total) {
		t.Fatalf("no staircase: A=%v B=%v C=%v", pts[0].Total, pts[1].Total, pts[2].Total)
	}
	// Steps should be comparable (serial servicing of equal requests).
	s1 := pts[1].Total - pts[0].Total
	s2 := pts[2].Total - pts[1].Total
	ratio := float64(s2) / float64(s1)
	if ratio < 0.4 || ratio > 2.5 {
		t.Errorf("staircase steps unequal: %v vs %v", s1, s2)
	}
	if pts[2].Total > time.Second {
		t.Errorf("C = %v, paper reports sub-second", pts[2].Total)
	}
}

func TestTables(t *testing.T) {
	pts7a := []Fig7aPoint{{Accelerators: 1, Waiting: time.Millisecond, Connect: time.Millisecond, Total: 2 * time.Millisecond}}
	pts7b := []Fig7bPoint{{Accelerators: 1, Batch: time.Millisecond, MPI: time.Millisecond, Total: 2 * time.Millisecond}}
	pts8 := []Fig8Point{{Load: 16, SchedOther: time.Millisecond, Service: time.Millisecond, Total: 2 * time.Millisecond}}
	pts9 := []Fig9Point{{Node: "A", Total: time.Millisecond}}
	var b strings.Builder
	if err := Fig7aTable(pts7a).Render(&b); err != nil || !strings.Contains(b.String(), "AC_Init") {
		t.Errorf("7a table: %v %q", err, b.String())
	}
	b.Reset()
	if err := Fig7bTable(pts7b).Render(&b); err != nil || !strings.Contains(b.String(), "dynamic request") {
		t.Errorf("7b table: %v", err)
	}
	b.Reset()
	if err := Fig8Table(pts8).Render(&b); err != nil || !strings.Contains(b.String(), "under load") {
		t.Errorf("8 table: %v", err)
	}
	b.Reset()
	if err := Fig9Table(pts9).Render(&b); err != nil || !strings.Contains(b.String(), "three compute nodes") {
		t.Errorf("9 table: %v", err)
	}
}
