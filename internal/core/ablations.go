package core

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/dac"
	"repro/internal/fifosched"
	"repro/internal/gpusim"
	"repro/internal/netsim"
	"repro/internal/pbs"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Ablations exercise design decisions the paper discusses without
// measuring: the top-priority treatment of dynamic requests
// (Section III-E), collective versus individual AC_Get
// (Section III-D), the utilization benefit of dynamic over static
// allocation (Section I), backfill, and the future-work partial
// allocation (Section VI).

// DynPriorityResult compares the latency of a dynamic request under
// queue backlog with and without the paper's top-priority policy.
type DynPriorityResult struct {
	TopPriority time.Duration
	PlainFIFO   time.Duration
}

// AblationDynPriority measures one dynamic request under a backlog of
// load unsatisfiable jobs, with the paper's policy and with the
// plain-FIFO ablation.
func AblationDynPriority(p cluster.Params, load, trials int) (DynPriorityResult, error) {
	run := func(top bool) (time.Duration, error) {
		pp := p
		pp.Maui.DynTopPriority = top
		pts, err := Fig8(pp, []int{load}, trials)
		if err != nil {
			return 0, err
		}
		return pts[0].Total, nil
	}
	var res DynPriorityResult
	var err error
	if res.TopPriority, err = run(true); err != nil {
		return res, fmt.Errorf("core: dyn-priority ablation (top): %w", err)
	}
	if res.PlainFIFO, err = run(false); err != nil {
		return res, fmt.Errorf("core: dyn-priority ablation (fifo): %w", err)
	}
	return res, nil
}

// CollectiveResult compares a multi-node job acquiring accelerators
// collectively (one aggregated request) versus individually (one
// serialized request per compute node).
type CollectiveResult struct {
	Collective time.Duration // all nodes served via one request
	Individual time.Duration // per-node requests, serialized at the server
}

// AblationCollectiveGet measures the time until every compute node of
// a cns-node job holds acsPerCN additional accelerators.
func AblationCollectiveGet(p cluster.Params, cns, acsPerCN int) (CollectiveResult, error) {
	p.ComputeNodes = cns
	p.Accelerators = cns * acsPerCN
	measure := func(collective bool) (time.Duration, error) {
		var elapsed time.Duration
		var mu sync.Mutex
		s := sim.Acquire()
		defer s.Release()
		c := cluster.New(s, p)
		start := newSignal(s, "start")
		err := s.Run(func() {
			defer c.Close()
			c.Start()
			client := c.Client("front")
			done := 0
			doneGate := s.NewGate("done")
			var dm sync.Mutex
			id, err := client.Submit(pbs.JobSpec{
				Name: "collget", Owner: "exp", Nodes: cns, PPN: 1, ACPN: 0, Walltime: time.Minute,
				Script: func(env *pbs.JobEnv) {
					ac, _, err := dac.Init(env)
					if err != nil {
						return
					}
					defer ac.Finalize()
					start.wait()
					if collective {
						_, _, err = ac.CollectiveGet(acsPerCN)
					} else {
						_, _, err = ac.Get(acsPerCN)
					}
					if err != nil {
						return
					}
					dm.Lock()
					done++
					dm.Unlock()
					doneGate.Broadcast()
				},
			})
			if err != nil {
				return
			}
			s.Sleep(50 * time.Millisecond) // let all node tasks reach start.wait
			t0 := s.Now()
			start.fire()
			dm.Lock()
			for done < cns {
				doneGate.Wait(&dm)
			}
			dm.Unlock()
			mu.Lock()
			elapsed = s.Now() - t0
			mu.Unlock()
			client.Wait(id)
		})
		if err != nil {
			return 0, err
		}
		mu.Lock()
		defer mu.Unlock()
		return elapsed, nil
	}
	var res CollectiveResult
	var err error
	if res.Collective, err = measure(true); err != nil {
		return res, fmt.Errorf("core: collective ablation: %w", err)
	}
	if res.Individual, err = measure(false); err != nil {
		return res, fmt.Errorf("core: individual ablation: %w", err)
	}
	return res, nil
}

// DynamicVsStaticResult compares phase-structured applications run
// with runtime AC_Get/AC_Free against the static baseline that must
// reserve its peak accelerator demand for the whole runtime.
type DynamicVsStaticResult struct {
	DynamicMakespan time.Duration
	StaticMakespan  time.Duration
	// Accelerator reservation integral in accelerator-seconds: lower
	// is better for the same computation.
	DynamicACSeconds float64
	StaticACSeconds  float64
	// Cluster energy over each run's makespan (paper §I: dynamic
	// provisioning as an energy lever), default power model.
	DynamicJoules float64
	StaticJoules  float64
	Rejections    int
}

// AblationDynamicVsStatic submits jobs phase-structured applications
// under both policies on the same cluster and compares makespan and
// accelerator occupancy.
func AblationDynamicVsStatic(p cluster.Params, jobs int) (DynamicVsStaticResult, error) {
	p.ComputeNodes = 2
	p.Accelerators = 4
	phases := []workload.Phase{
		{ExtraACs: 0, Compute: 150 * time.Millisecond},
		{ExtraACs: 2, Compute: 200 * time.Millisecond, Stretch: 100 * time.Millisecond},
		{ExtraACs: 0, Compute: 150 * time.Millisecond},
	}
	var res DynamicVsStaticResult

	// Static baseline: every job reserves 1 static + peak 2 = 3
	// accelerators for its whole duration.
	staticSpan, staticACs, staticJ, err := runPolicy(p, jobs, func(s *sim.Simulation, i int) pbs.JobSpec {
		return workload.StaticPeakSpec(s, fmt.Sprintf("static-%d", i), 1, phases)
	})
	if err != nil {
		return res, fmt.Errorf("core: static baseline: %w", err)
	}
	res.StaticMakespan, res.StaticACSeconds, res.StaticJoules = staticSpan, staticACs, staticJ

	// Dynamic: 1 static accelerator, grow by 2 during the middle
	// phase only.
	var mu sync.Mutex
	dynSpan, dynACs, dynJ, err := runPolicy(p, jobs, func(s *sim.Simulation, i int) pbs.JobSpec {
		return workload.DynamicSpec(s, fmt.Sprintf("dyn-%d", i), 1, phases, func(r workload.PhasedResult) {
			mu.Lock()
			res.Rejections += r.Rejections
			mu.Unlock()
		})
	})
	if err != nil {
		return res, fmt.Errorf("core: dynamic run: %w", err)
	}
	res.DynamicMakespan, res.DynamicACSeconds, res.DynamicJoules = dynSpan, dynACs, dynJ
	return res, nil
}

// runPolicy submits jobs specs at once and reports the makespan, the
// accelerator reservation integral, and the cluster energy over the
// makespan.
func runPolicy(p cluster.Params, jobs int, mk func(s *sim.Simulation, i int) pbs.JobSpec) (time.Duration, float64, float64, error) {
	var span time.Duration
	var acSeconds float64
	var joules float64
	s := sim.Acquire()
	defer s.Release()
	c := cluster.New(s, p)
	err := s.Run(func() {
		defer c.Close()
		c.Start()
		client := c.Client("front")
		t0 := s.Now()
		var ids []string
		for i := 0; i < jobs; i++ {
			id, err := client.Submit(mk(s, i))
			if err != nil {
				return
			}
			ids = append(ids, id)
		}
		var last time.Duration
		for _, id := range ids {
			info, err := client.Wait(id)
			if err != nil {
				return
			}
			if info.CompletedAt > last {
				last = info.CompletedAt
			}
			// Static accelerators: held from start to completion.
			staticHeld := float64(info.Spec.ACPN*info.Spec.Nodes) * (info.CompletedAt - info.StartedAt).Seconds()
			acSeconds += staticHeld
			for _, rec := range info.DynRecords {
				if rec.State != pbs.DynGranted {
					continue
				}
				end := rec.FreedAt
				if end == 0 {
					end = info.CompletedAt
				}
				acSeconds += float64(len(rec.Hosts)) * (end - rec.RepliedAt).Seconds()
			}
		}
		span = last - t0
		joules = c.Server.Energy(pbs.DefaultPowerModel(), span).Total()
	})
	if err != nil {
		return 0, 0, 0, err
	}
	return span, acSeconds, joules, nil
}

// BackfillResult compares the makespan of a mixed workload with EASY
// backfill on and off.
type BackfillResult struct {
	On  time.Duration
	Off time.Duration
}

// AblationBackfill replays the same generated workload under both
// settings.
func AblationBackfill(p cluster.Params, jobs int, seed uint64) (BackfillResult, error) {
	p.ComputeNodes = 2
	p.Accelerators = 2
	run := func(backfill bool) (time.Duration, error) {
		pp := p
		pp.Maui.Backfill = backfill
		// Isolate the backfill effect: with fairshare active the
		// narrow jobs overtake the blocked wide head by priority in
		// both modes and backfill never gets exercised.
		pp.Maui.FairshareWeight = 0
		var span time.Duration
		s := sim.Acquire()
		defer s.Release()
		c := cluster.New(s, pp)
		err := s.Run(func() {
			defer c.Close()
			c.Start()
			client := c.Client("front")
			// Wide jobs leave two cores per node so narrow jobs can
			// backfill behind a blocked wide head; their runtime
			// spans several scheduling cycles so the blocked window
			// is actually observable.
			gen := workload.NewGenerator(s, seed, 30*time.Millisecond, []workload.Class{
				{Name: "wide", Weight: 1, Nodes: 2, PPN: 6, MinRun: 500 * time.Millisecond, MaxRun: 900 * time.Millisecond},
				{Name: "narrow", Weight: 3, Nodes: 1, PPN: 2, MinRun: 20 * time.Millisecond, MaxRun: 60 * time.Millisecond},
			})
			trace := workload.Record(gen, jobs)
			t0 := s.Now()
			ids, err := workload.Replay(s, client, trace)
			if err != nil {
				return
			}
			var last time.Duration
			for _, id := range ids {
				info, err := client.Wait(id)
				if err != nil {
					return
				}
				if info.CompletedAt > last {
					last = info.CompletedAt
				}
			}
			span = last - t0
		})
		return span, err
	}
	var res BackfillResult
	var err error
	if res.On, err = run(true); err != nil {
		return res, fmt.Errorf("core: backfill on: %w", err)
	}
	if res.Off, err = run(false); err != nil {
		return res, fmt.Errorf("core: backfill off: %w", err)
	}
	return res, nil
}

// DoubleBufferResult compares chunked offloading with and without
// double buffering — the latency-hiding technique Section I proposes
// for the host/accelerator bandwidth penalty.
type DoubleBufferResult struct {
	Sequential time.Duration
	Overlapped time.Duration
}

// chunkKernelOnce registers the fixed-cost kernel the ablation runs
// (~40 ms on the default device).
var chunkKernelOnce sync.Once

func registerChunkKernel() {
	chunkKernelOnce.Do(func() {
		gpusim.RegisterKernel("core.chunkwork", func(ctx *gpusim.KernelCtx) (gpusim.Cost, error) {
			return gpusim.Cost{FLOPs: 515e9 * 0.04}, nil
		})
	})
}

// AblationDoubleBuffer processes chunks 8 MiB chunks on one
// network-attached accelerator, strictly sequentially and with two
// device buffers so the next transfer overlaps the running kernel.
func AblationDoubleBuffer(p cluster.Params, chunks int) (DoubleBufferResult, error) {
	registerChunkKernel()
	p.ComputeNodes = 1
	p.Accelerators = 1
	const chunkBytes = 8 << 20
	run := func(overlap bool) (time.Duration, error) {
		var elapsed time.Duration
		var mu sync.Mutex
		err := cluster.Run(p, func(c *cluster.Cluster, client *pbs.Client) {
			id, err := client.Submit(pbs.JobSpec{
				Name: "chunks", Owner: "exp", Nodes: 1, PPN: 2, ACPN: 1, Walltime: time.Minute,
				Script: func(env *pbs.JobEnv) {
					ac, hs, err := dac.Init(env)
					if err != nil {
						return
					}
					defer ac.Finalize()
					h := hs[0]
					bufs := [2]gpusim.Ptr{}
					bufs[0], _ = ac.MemAlloc(h, chunkBytes)
					bufs[1], _ = ac.MemAlloc(h, chunkBytes)
					data := make([]byte, chunkBytes)
					start := c.Sim.Now()
					if !overlap {
						for i := 0; i < chunks; i++ {
							if err := ac.MemCpyToDevice(h, bufs[0], 0, data); err != nil {
								return
							}
							if err := ac.KernelRun(h, "core.chunkwork", [3]int{1}, [3]int{1}, bufs[0]); err != nil {
								return
							}
						}
					} else {
						grp := c.Sim.NewGroup("prefetch")
						if err := ac.MemCpyToDevice(h, bufs[0], 0, data); err != nil {
							return
						}
						for i := 0; i < chunks; i++ {
							if i+1 < chunks {
								next := bufs[(i+1)%2]
								grp.Go("prefetch", func() {
									_ = ac.MemCpyToDevice(h, next, 0, data)
								})
							}
							if err := ac.KernelRun(h, "core.chunkwork", [3]int{1}, [3]int{1}, bufs[i%2]); err != nil {
								return
							}
							grp.Wait()
						}
					}
					mu.Lock()
					elapsed = c.Sim.Now() - start
					mu.Unlock()
				},
			})
			if err != nil {
				return
			}
			client.Wait(id)
		})
		mu.Lock()
		defer mu.Unlock()
		if err == nil && elapsed == 0 {
			err = fmt.Errorf("core: double-buffer run produced no measurement")
		}
		return elapsed, err
	}
	var res DoubleBufferResult
	var err error
	if res.Sequential, err = run(false); err != nil {
		return res, fmt.Errorf("core: sequential chunks: %w", err)
	}
	if res.Overlapped, err = run(true); err != nil {
		return res, fmt.Errorf("core: overlapped chunks: %w", err)
	}
	return res, nil
}

// SchedulerPortabilityResult compares the same workload under the
// Maui scheduler and under TORQUE's basic FIFO pbs_sched — the
// paper's Section V portability claim, quantified.
type SchedulerPortabilityResult struct {
	MauiMakespan time.Duration
	FIFOMakespan time.Duration
	// Latency of one dynamic request under each scheduler, idle
	// system.
	MauiDynLatency time.Duration
	FIFODynLatency time.Duration
}

// AblationSchedulerPortability runs a mixed workload and one dynamic
// request under both schedulers.
func AblationSchedulerPortability(p cluster.Params, jobs int, seed uint64) (SchedulerPortabilityResult, error) {
	p.ComputeNodes = 2
	p.Accelerators = 3
	withFIFO := func(pp cluster.Params) cluster.Params {
		pp.MakeScheduler = func(net *netsim.Network, serverEP string) cluster.SchedulerDaemon {
			fp := fifosched.DefaultParams()
			fp.CycleInterval = pp.Maui.CycleInterval
			fp.CycleOverhead = pp.Maui.CycleOverhead
			fp.PerJobCost = pp.Maui.PerJobCost
			return fifosched.New(net, serverEP, fp)
		}
		return pp
	}

	makespan := func(pp cluster.Params) (time.Duration, error) {
		var span time.Duration
		err := cluster.Run(pp, func(c *cluster.Cluster, client *pbs.Client) {
			gen := workload.NewGenerator(c.Sim, seed, 30*time.Millisecond, []workload.Class{
				{Name: "wide", Weight: 1, Nodes: 2, PPN: 6, MinRun: 300 * time.Millisecond, MaxRun: 600 * time.Millisecond},
				{Name: "narrow", Weight: 3, Nodes: 1, PPN: 2, MinRun: 20 * time.Millisecond, MaxRun: 60 * time.Millisecond},
			})
			trace := workload.Record(gen, jobs)
			t0 := c.Sim.Now()
			ids, err := workload.Replay(c.Sim, client, trace)
			if err != nil {
				return
			}
			var last time.Duration
			for _, id := range ids {
				info, err := client.Wait(id)
				if err != nil {
					return
				}
				if info.CompletedAt > last {
					last = info.CompletedAt
				}
			}
			span = last - t0
		})
		return span, err
	}
	dynLatency := func(pp cluster.Params) (time.Duration, error) {
		var batch time.Duration
		var mu sync.Mutex
		err := cluster.Run(pp, func(c *cluster.Cluster, client *pbs.Client) {
			id, err := client.Submit(pbs.JobSpec{
				Name: "dyn", Owner: "exp", Nodes: 1, PPN: 1, ACPN: 1, Walltime: time.Minute,
				Script: func(env *pbs.JobEnv) {
					ac, _, err := dac.Init(env)
					if err != nil {
						return
					}
					defer ac.Finalize()
					if clientID, _, err := ac.Get(1); err == nil {
						ac.Free(clientID)
					}
					st := ac.Stats()
					mu.Lock()
					if len(st.Gets) > 0 {
						batch = st.Gets[0].Batch
					}
					mu.Unlock()
				},
			})
			if err != nil {
				return
			}
			client.Wait(id)
		})
		mu.Lock()
		defer mu.Unlock()
		return batch, err
	}

	var res SchedulerPortabilityResult
	var err error
	if res.MauiMakespan, err = makespan(p); err != nil {
		return res, fmt.Errorf("core: maui workload: %w", err)
	}
	if res.FIFOMakespan, err = makespan(withFIFO(p)); err != nil {
		return res, fmt.Errorf("core: fifo workload: %w", err)
	}
	if res.MauiDynLatency, err = dynLatency(p); err != nil {
		return res, fmt.Errorf("core: maui dyn: %w", err)
	}
	if res.FIFODynLatency, err = dynLatency(withFIFO(p)); err != nil {
		return res, fmt.Errorf("core: fifo dyn: %w", err)
	}
	return res, nil
}

// PartialResult compares the future-work partial allocation option
// against the paper's reject-when-short behaviour.
type PartialResult struct {
	GrantedWithPartial    int
	GrantedWithoutPartial int
	RejectedWithout       bool
}

// AblationPartialAlloc requests more accelerators than are free.
func AblationPartialAlloc(p cluster.Params) (PartialResult, error) {
	p.ComputeNodes = 1
	p.Accelerators = 3
	run := func(partial bool) (int, bool, error) {
		pp := p
		pp.Maui.PartialAlloc = partial
		granted := -1
		rejected := false
		var mu sync.Mutex
		err := cluster.Run(pp, func(c *cluster.Cluster, client *pbs.Client) {
			id, err := client.Submit(pbs.JobSpec{
				Name: "partial", Owner: "exp", Nodes: 1, PPN: 1, ACPN: 1, Walltime: time.Minute,
				Script: func(env *pbs.JobEnv) {
					ac, _, err := dac.Init(env)
					if err != nil {
						return
					}
					defer ac.Finalize()
					_, hs, err := ac.Get(5) // only 2 free
					mu.Lock()
					defer mu.Unlock()
					if err != nil {
						rejected = true
						granted = 0
						return
					}
					granted = len(hs)
				},
			})
			if err != nil {
				return
			}
			client.Wait(id)
		})
		return granted, rejected, err
	}
	var res PartialResult
	var rej bool
	var err error
	if res.GrantedWithPartial, _, err = run(true); err != nil {
		return res, fmt.Errorf("core: partial on: %w", err)
	}
	if res.GrantedWithoutPartial, rej, err = run(false); err != nil {
		return res, fmt.Errorf("core: partial off: %w", err)
	}
	res.RejectedWithout = rej
	return res, nil
}
