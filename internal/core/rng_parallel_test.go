package core

import (
	"fmt"
	"testing"

	"repro/internal/sim"
)

// Trial parallelism must never leak into random streams: every trial
// derives its own sim.RNG from its seed, so the sequence a trial
// draws is a pure function of the seed, not of which worker ran it or
// how many workers exist. This is the invariant the seededrand
// analyzer enforces statically; here it is checked dynamically across
// SetParallelism levels.
func TestRNGStreamsIdenticalAcrossParallelism(t *testing.T) {
	const trials = 24
	const draws = 64

	sample := func(parallel int) [][]uint64 {
		old := Parallelism()
		defer SetParallelism(old)
		SetParallelism(parallel)
		out := make([][]uint64, trials)
		err := forEach(trials, func(i int) error {
			r := sim.NewRNG(uint64(i)*0x9e37 + 1)
			seq := make([]uint64, draws)
			for j := range seq {
				seq[j] = r.Uint64()
			}
			out[i] = seq
			return nil
		})
		if err != nil {
			t.Fatalf("forEach(parallel=%d): %v", parallel, err)
		}
		return out
	}

	serial := sample(1)
	for _, level := range []int{2, 4, 8} {
		got := sample(level)
		for i := range serial {
			for j := range serial[i] {
				if got[i][j] != serial[i][j] {
					t.Fatalf("trial %d draw %d differs at parallelism %d: %#x vs %#x",
						i, j, level, got[i][j], serial[i][j])
				}
			}
		}
	}
}

// Split streams must also be stable across parallelism: an actor that
// derives per-component generators (netsim links, jitter models) gets
// the same derived sequences no matter how trials are scheduled.
func TestRNGSplitStableUnderParallelism(t *testing.T) {
	derive := func(seed uint64) string {
		root := sim.NewRNG(seed)
		a, b := root.Split(), root.Split()
		return fmt.Sprintf("%x-%x-%x-%x", a.Uint64(), b.Uint64(), a.Uint64(), root.Uint64())
	}
	want := make([]string, 16)
	for i := range want {
		want[i] = derive(uint64(i) + 7)
	}

	old := Parallelism()
	defer SetParallelism(old)
	SetParallelism(8)
	got := make([]string, len(want))
	if err := forEach(len(want), func(i int) error {
		got[i] = derive(uint64(i) + 7)
		return nil
	}); err != nil {
		t.Fatalf("forEach: %v", err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("derived stream %d differs under parallelism: %s vs %s", i, got[i], want[i])
		}
	}
}
