package core

import (
	"testing"
	"time"

	"repro/internal/cluster"
)

func TestAblationDynPriority(t *testing.T) {
	res, err := AblationDynPriority(cluster.Default(), 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.TopPriority >= res.PlainFIFO {
		t.Errorf("top-priority %v should beat plain FIFO %v under backlog", res.TopPriority, res.PlainFIFO)
	}
}

func TestAblationCollectiveGet(t *testing.T) {
	res, err := AblationCollectiveGet(cluster.Default(), 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Collective <= 0 || res.Individual <= 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
	// One aggregated request avoids the server's serial processing of
	// three separate requests.
	if res.Collective >= res.Individual {
		t.Errorf("collective %v should beat individual %v", res.Collective, res.Individual)
	}
}

func TestAblationDynamicVsStatic(t *testing.T) {
	res, err := AblationDynamicVsStatic(cluster.Default(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.DynamicACSeconds <= 0 || res.StaticACSeconds <= 0 {
		t.Fatalf("degenerate: %+v", res)
	}
	// Reserving the peak for the whole runtime must cost more
	// accelerator-seconds than growing only during the demanding
	// phase.
	if res.DynamicACSeconds >= res.StaticACSeconds {
		t.Errorf("dynamic AC-seconds %v should be below static %v", res.DynamicACSeconds, res.StaticACSeconds)
	}
	// And the static jobs serialize on the accelerator pool, so the
	// dynamic makespan should not be worse.
	if res.DynamicMakespan > res.StaticMakespan {
		t.Errorf("dynamic makespan %v exceeds static %v", res.DynamicMakespan, res.StaticMakespan)
	}
	// A shorter makespan with fewer reserved accelerators also costs
	// less energy under the default power model.
	if res.DynamicJoules <= 0 || res.StaticJoules <= 0 {
		t.Fatalf("energy not computed: %+v", res)
	}
	if res.DynamicJoules >= res.StaticJoules {
		t.Errorf("dynamic energy %v J not below static %v J", res.DynamicJoules, res.StaticJoules)
	}
}

func TestAblationBackfill(t *testing.T) {
	res, err := AblationBackfill(cluster.Default(), 16, 6)
	if err != nil {
		t.Fatal(err)
	}
	if res.On <= 0 || res.Off <= 0 {
		t.Fatalf("degenerate: %+v", res)
	}
	if res.On > res.Off {
		t.Errorf("backfill on (%v) should not be slower than off (%v)", res.On, res.Off)
	}
}

func TestAblationSchedulerPortability(t *testing.T) {
	// Seed re-pinned when the workload generator split its shape and
	// arrival RNG streams (the draw sequence behind each seed moved).
	res, err := AblationSchedulerPortability(cluster.Default(), 12, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.MauiMakespan <= 0 || res.FIFOMakespan <= 0 {
		t.Fatalf("degenerate: %+v", res)
	}
	// Maui (backfill + priorities) should not be slower than strict
	// FIFO on a mixed workload.
	if res.MauiMakespan > res.FIFOMakespan {
		t.Errorf("maui %v slower than fifo %v", res.MauiMakespan, res.FIFOMakespan)
	}
	// Dynamic allocation works under both schedulers and in the same
	// latency class.
	if res.MauiDynLatency <= 0 || res.FIFODynLatency <= 0 {
		t.Fatalf("dynamic request failed under a scheduler: %+v", res)
	}
	ratio := float64(res.FIFODynLatency) / float64(res.MauiDynLatency)
	if ratio < 0.3 || ratio > 3 {
		t.Errorf("dyn latencies diverge unexpectedly: maui=%v fifo=%v", res.MauiDynLatency, res.FIFODynLatency)
	}
}

func TestAblationDoubleBuffer(t *testing.T) {
	res, err := AblationDoubleBuffer(cluster.Default(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Overlapped >= res.Sequential {
		t.Errorf("overlapped %v not faster than sequential %v", res.Overlapped, res.Sequential)
	}
	// Expect roughly (chunks-1) transfer times (~6.7ms each) saved.
	if saved := res.Sequential - res.Overlapped; saved < 30*time.Millisecond {
		t.Errorf("saved only %v", saved)
	}
}

func TestAblationPartialAlloc(t *testing.T) {
	res, err := AblationPartialAlloc(cluster.Default())
	if err != nil {
		t.Fatal(err)
	}
	if res.GrantedWithPartial != 2 {
		t.Errorf("partial grant = %d, want 2", res.GrantedWithPartial)
	}
	if res.GrantedWithoutPartial != 0 || !res.RejectedWithout {
		t.Errorf("without partial: granted=%d rejected=%v", res.GrantedWithoutPartial, res.RejectedWithout)
	}
}
