//go:build race

package core

// raceDetectorOn reports whether this test binary was built with the
// race detector. See TestBreakdownExactAtEveryParallelism for the one
// assertion it gates.
const raceDetectorOn = true
