package core

import (
	"errors"
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/cluster"
)

// Figure output must be byte-identical no matter how many OS threads
// the trials fan out over: the per-index result slots are reduced in
// index order, so the floating-point sums behind every mean add in
// the same order at any parallelism level.
func TestFiguresIdenticalAcrossParallelism(t *testing.T) {
	old := Parallelism()
	defer SetParallelism(old)
	p := cluster.Default()

	SetParallelism(1)
	serial7a, err := Fig7a(p, 2, 3)
	if err != nil {
		t.Fatalf("serial Fig7a: %v", err)
	}
	serial9, err := Fig9(p, 2)
	if err != nil {
		t.Fatalf("serial Fig9: %v", err)
	}

	SetParallelism(4)
	par7a, err := Fig7a(p, 2, 3)
	if err != nil {
		t.Fatalf("parallel Fig7a: %v", err)
	}
	par9, err := Fig9(p, 2)
	if err != nil {
		t.Fatalf("parallel Fig9: %v", err)
	}

	if !reflect.DeepEqual(serial7a, par7a) {
		t.Fatalf("Fig7a differs across parallelism:\nserial:   %+v\nparallel: %+v", serial7a, par7a)
	}
	if !reflect.DeepEqual(serial9, par9) {
		t.Fatalf("Fig9 differs across parallelism:\nserial:   %+v\nparallel: %+v", serial9, par9)
	}
}

func TestForEachRunsAllAndReportsFirstErrorByIndex(t *testing.T) {
	old := Parallelism()
	defer SetParallelism(old)
	SetParallelism(4)

	var ran atomic.Int64
	errAt2 := errors.New("boom 2")
	err := forEach(16, func(i int) error {
		ran.Add(1)
		switch i {
		case 2:
			return errAt2
		case 9:
			return errors.New("boom 9")
		}
		return nil
	})
	if got := ran.Load(); got != 16 {
		t.Fatalf("ran %d of 16 indices", got)
	}
	if err != errAt2 {
		t.Fatalf("got error %v, want first-by-index %v", err, errAt2)
	}
	if err := forEach(0, func(int) error { return errors.New("never") }); err != nil {
		t.Fatalf("forEach(0): %v", err)
	}
}

func TestSetParallelismClamps(t *testing.T) {
	old := Parallelism()
	defer SetParallelism(old)
	SetParallelism(3)
	if got := Parallelism(); got != 3 {
		t.Fatalf("Parallelism() = %d, want 3", got)
	}
	SetParallelism(0)
	if got := Parallelism(); got < 1 {
		t.Fatalf("Parallelism() = %d after reset, want >= 1", got)
	}
}
