package core

import (
	"fmt"

	"repro/internal/audit"
	"repro/internal/cluster"
	"repro/internal/metrics"
)

// The audited scale ladder runs the same per-point bodies as Scale
// with a flight recorder attached to each point's simulation: every
// state mutation in pbs, maui, netsim, gpusim, and the DAC library
// emits a structured event into the ring, the pbs invariant engine
// checks resource conservation at every scheduler cycle, and a digest
// ticker hashes each component's state on the telemetry scrape
// cadence. Because each ladder point owns its simulation, its
// recording is byte-identical across trial-parallelism levels — the
// property the cross-parallelism identity test and the CI audit smoke
// step pin.

// AuditCapacity is the per-point flight-recorder ring size. The
// largest default ladder point (256 nodes, 2048 jobs) emits well
// under this many events, so default recordings never wrap.
const AuditCapacity = 1 << 18

// AuditedPoint couples a scale-ladder row with the flight recording
// that watched it.
type AuditedPoint struct {
	ScalePoint

	// Events is the recorded event stream (oldest first).
	Events []audit.Event
	// Checks and Breaches count invariant evaluations and failures.
	Checks   int64
	Breaches int64
	// Dropped counts events lost to ring wrap (0 on default ladders).
	Dropped int64
	// Rounds counts digest capture rounds (the ticker's periodic
	// captures plus the final capture at drain).
	Rounds int64
}

// FinalDigests returns the last captured sum per digest provider —
// the end-of-run state fingerprint used by the faithful-vs-sharded
// identity gate.
func (a *AuditedPoint) FinalDigests() map[string]uint64 {
	out := make(map[string]uint64)
	for _, e := range a.Events {
		if e.Kind == audit.KindDigest {
			out[e.Subj] = uint64(e.A)
		}
	}
	return out
}

// ScaleAudited runs the scale ladder under the chosen server mode
// with a flight recorder per point. The recorder rides alongside the
// figures the unaudited ladder reports: the rows come from exactly
// the code path ScaleMode runs, with auditing layered on top.
func ScaleAudited(p cluster.Params, sizes []int, mode ServerMode) ([]AuditedPoint, error) {
	if len(sizes) == 0 {
		sizes = ScaleSizes
	}
	out := make([]AuditedPoint, len(sizes))
	err := forEach(len(sizes), func(idx int) error {
		n := sizes[idx]
		if n < 1 {
			return fmt.Errorf("core: ScaleAudited size %d", n)
		}
		rec := audit.New(AuditCapacity)
		var pt ScalePoint
		var err error
		if mode == ServerSharded {
			pt, err = scalePointSharded(p, n, rec)
		} else {
			pt, err = scalePointFaithful(p, n, rec)
		}
		if err != nil {
			return err
		}
		out[idx] = AuditedPoint{
			ScalePoint: pt,
			Events:     rec.Events(),
			Checks:     rec.Checks(),
			Breaches:   rec.Breaches(),
			Dropped:    rec.Dropped(),
			Rounds:     rec.DigestCaptures(),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// AuditBreaches sums invariant breaches across a set of audited
// points (the CI smoke step asserts this is zero).
func AuditBreaches(points []AuditedPoint) int64 {
	var total int64
	for i := range points {
		total += points[i].Breaches
	}
	return total
}

// AuditTable renders the per-point audit counters alongside the
// ladder row they watched.
func AuditTable(points []AuditedPoint) *metrics.Table {
	t := &metrics.Table{
		Title: "Audit: flight-recorder events, invariant checks, and digest rounds per ladder point",
		Headers: []string{"compute_nodes", "jobs", "events", "dropped",
			"checks", "breaches", "digest_rounds", "makespan_ms"},
	}
	for i := range points {
		pt := &points[i]
		t.AddRow(
			fmt.Sprint(pt.ComputeNodes), fmt.Sprint(pt.Jobs),
			fmt.Sprint(len(pt.Events)), fmt.Sprint(pt.Dropped),
			fmt.Sprint(pt.Checks), fmt.Sprint(pt.Breaches),
			fmt.Sprint(pt.Rounds), metrics.Ms(pt.Makespan),
		)
	}
	return t
}
