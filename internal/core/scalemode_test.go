package core

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
)

func TestParseServerMode(t *testing.T) {
	cases := []struct {
		in      string
		want    ServerMode
		wantErr bool
	}{
		{"", ServerFaithful, false},
		{"faithful", ServerFaithful, false},
		{"sharded", ServerSharded, false},
		{"SHARDED", "", true},
		{"bogus", "", true},
	}
	for _, c := range cases {
		got, err := ParseServerMode(c.in)
		if c.wantErr {
			if err == nil {
				t.Errorf("ParseServerMode(%q): expected error, got %q", c.in, got)
			}
			continue
		}
		if err != nil || got != c.want {
			t.Errorf("ParseServerMode(%q) = %q, %v; want %q", c.in, got, err, c.want)
		}
	}
}

func TestShardAndPartitionSizing(t *testing.T) {
	cases := []struct {
		n, shards, parts int
	}{
		{8, 4, 2},      // both floors
		{256, 4, 2},    // at the knee
		{1024, 16, 8},  // linear region
		{4096, 64, 32}, // both ceilings
		{100000, 64, 32},
	}
	for _, c := range cases {
		if got := ShardsFor(c.n); got != c.shards {
			t.Errorf("ShardsFor(%d) = %d, want %d", c.n, got, c.shards)
		}
		if got := PartitionsFor(c.n); got != c.parts {
			t.Errorf("PartitionsFor(%d) = %d, want %d", c.n, got, c.parts)
		}
	}
}

// The faithful mode of ScaleMode must be exactly the Scale experiment
// — same numbers, at any trial parallelism. This is the ablation's
// control arm: -server faithful must keep reproducing today's
// figures byte-identically.
func TestScaleModeFaithfulIdenticalAcrossParallelism(t *testing.T) {
	old := Parallelism()
	defer SetParallelism(old)
	p := cluster.Default()
	sizes := []int{8, 32}

	SetParallelism(1)
	base, err := Scale(p, sizes)
	if err != nil {
		t.Fatalf("Scale: %v", err)
	}
	SetParallelism(4)
	faithful, err := ScaleMode(p, sizes, ServerFaithful)
	if err != nil {
		t.Fatalf("ScaleMode(faithful): %v", err)
	}
	if !reflect.DeepEqual(base, faithful) {
		t.Fatalf("faithful ScaleMode differs from Scale:\nscale: %+v\nmode:  %+v", base, faithful)
	}
}

// The sharded mode is deterministic too: the partitioned server and
// scheduler must not introduce run-to-run or parallelism-dependent
// divergence.
func TestScaleModeShardedIdenticalAcrossParallelism(t *testing.T) {
	old := Parallelism()
	defer SetParallelism(old)
	p := cluster.Default()
	sizes := []int{8, 32}

	SetParallelism(1)
	serial, err := ScaleMode(p, sizes, ServerSharded)
	if err != nil {
		t.Fatalf("serial ScaleMode(sharded): %v", err)
	}
	SetParallelism(4)
	parallel, err := ScaleMode(p, sizes, ServerSharded)
	if err != nil {
		t.Fatalf("parallel ScaleMode(sharded): %v", err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("sharded ScaleMode differs across parallelism:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
}

// The whole point of the sharded ablation: scheduler cycle time must
// stay sub-quadratic all the way to 1024 compute nodes. This is the
// scale-ladder acceptance gate; skipped under -short because the
// 1024-node replay costs a few host seconds.
func TestScaleShardedSubQuadratic1024(t *testing.T) {
	if testing.Short() {
		t.Skip("1024-node replay skipped in short mode")
	}
	pts, err := ScaleMode(cluster.Default(), []int{256, 1024}, ServerSharded)
	if err != nil {
		t.Fatalf("ScaleMode: %v", err)
	}
	small, large := pts[0], pts[1]
	if small.CycleMean <= 0 || large.CycleMean <= 0 {
		t.Fatalf("cycle means not recorded: %+v %+v", small, large)
	}
	factor := float64(large.ComputeNodes) / float64(small.ComputeNodes)
	quad := factor * factor
	if ratio := float64(large.CycleMean) / float64(small.CycleMean); ratio >= quad {
		t.Fatalf("sharded cycle time grew %.1fx over a %gx cluster growth (quadratic bound %gx)",
			ratio, factor, quad)
	}
	if ratio := float64(large.DynP99) / float64(small.DynP99); ratio >= quad {
		t.Fatalf("sharded dyn p99 grew %.1fx over a %gx cluster growth (quadratic bound %gx)",
			ratio, factor, quad)
	}
	for _, pt := range pts {
		if pt.Shards != ShardsFor(pt.ComputeNodes) || pt.Partitions != PartitionsFor(pt.ComputeNodes) {
			t.Errorf("sizing not recorded: %+v", pt)
		}
		if pt.DynP50 <= 0 || pt.DynP99 < pt.DynP50 {
			t.Errorf("dyn quantiles implausible: p50 %v p99 %v", pt.DynP50, pt.DynP99)
		}
		if pt.ShardBusy <= 0 || pt.ShardBusy > 1 {
			t.Errorf("shard busy fraction out of range: %v", pt.ShardBusy)
		}
	}
}

func TestScaleShardedTableRenders(t *testing.T) {
	pts := []ScalePoint{{
		ComputeNodes: 1024, Accelerators: 8192, Jobs: 8192,
		Shards: 16, Partitions: 8, Probers: 16,
		CycleMean: 12 * time.Millisecond, CycleMax: 19 * time.Millisecond,
		DynP50: 28 * time.Millisecond, DynP99: 57 * time.Millisecond,
		ShardBusy: 0.0123, Makespan: 72 * time.Second,
	}}
	var b strings.Builder
	if err := ScaleShardedTable(pts).Render(&b); err != nil {
		t.Fatalf("render: %v", err)
	}
	for _, want := range []string{"compute_nodes", "shards", "partitions", "dyn_p99_ms", "shard_busy", "0.0123", "1024"} {
		if !strings.Contains(b.String(), want) {
			t.Fatalf("table missing %q:\n%s", want, b.String())
		}
	}
}
