// Package core assembles the paper's contribution — the dynamic
// batch system for network-attached accelerator clusters — into
// experiment drivers that regenerate every measured figure of the
// evaluation (Section IV): Figure 7(a) static AC_Init decomposition,
// Figure 7(b) dynamic request decomposition, Figure 8 allocation
// under scheduler load, and Figure 9 concurrent dynamic requests.
// The ablations in ablations.go exercise the design choices the
// paper discusses but does not measure.
package core

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/dac"
	"repro/internal/metrics"
	"repro/internal/pbs"
	"repro/internal/sim"
	"repro/internal/workload"
)

// signal is a sim-aware one-shot event for coordinating experiment
// actors (main vs job scripts).
type signal struct {
	mu   sync.Mutex
	gate *sim.Gate
	set  bool
}

func newSignal(s *sim.Simulation, name string) *signal {
	return &signal{gate: s.NewGate(name)}
}

func (sg *signal) fire() {
	sg.mu.Lock()
	sg.set = true
	sg.mu.Unlock()
	sg.gate.Broadcast()
}

func (sg *signal) wait() {
	sg.mu.Lock()
	for !sg.set {
		sg.gate.Wait(&sg.mu)
	}
	sg.mu.Unlock()
}

// Fig7aPoint is one bar of Figure 7(a): AC_Init for x statically
// allocated accelerators, split into waiting and connect time.
type Fig7aPoint struct {
	Accelerators int
	Waiting      time.Duration
	Connect      time.Duration
	Total        time.Duration
}

// Fig7a measures AC_Init completion for 1..maxACs statically
// allocated accelerators (trials per point, averaged). Every
// (point, trial) pair is an independent simulation, so all of them
// fan out over the trial worker pool; the reduction below runs in
// point-then-trial order, keeping output identical at any
// parallelism level.
func Fig7a(p cluster.Params, maxACs, trials int) ([]Fig7aPoint, error) {
	type trialResult struct {
		wait, conn time.Duration
	}
	results := make([]trialResult, maxACs*trials)
	err := forEach(len(results), func(i int) error {
		x := i/trials + 1
		trial := i % trials
		var stats dac.Stats
		var mu sync.Mutex
		tp := p
		tp.Seed = uint64(trial + 1)
		err := cluster.Run(tp, func(c *cluster.Cluster, client *pbs.Client) {
			id, err := client.Submit(pbs.JobSpec{
				Name: "fig7a", Owner: "exp", Nodes: 1, PPN: 1, ACPN: x, Walltime: time.Minute,
				Script: func(env *pbs.JobEnv) {
					ac, _, err := dac.Init(env)
					if err != nil {
						return
					}
					defer ac.Finalize()
					mu.Lock()
					stats = ac.Stats()
					mu.Unlock()
				},
			})
			if err != nil {
				return
			}
			client.Wait(id)
		})
		if err != nil {
			return fmt.Errorf("core: Fig7a x=%d: %w", x, err)
		}
		mu.Lock()
		results[i] = trialResult{wait: stats.InitWaiting, conn: stats.InitConnect}
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []Fig7aPoint
	for x := 1; x <= maxACs; x++ {
		var wait, conn metrics.Sample
		for trial := 0; trial < trials; trial++ {
			r := results[(x-1)*trials+trial]
			wait.Add(r.wait)
			conn.Add(r.conn)
		}
		out = append(out, Fig7aPoint{
			Accelerators: x,
			Waiting:      wait.Mean(),
			Connect:      conn.Mean(),
			Total:        wait.Mean() + conn.Mean(),
		})
	}
	return out, nil
}

// Fig7bPoint is one bar of Figure 7(b): a dynamic request for y
// accelerators, split into the batch-system share and the
// resource-management-library (MPI) share.
type Fig7bPoint struct {
	Accelerators int
	Batch        time.Duration
	MPI          time.Duration
	Total        time.Duration
}

// Fig7b measures dynamic allocation of 1..maxACs accelerators on an
// otherwise idle system. Trials fan out like Fig7a's.
func Fig7b(p cluster.Params, maxACs, trials int) ([]Fig7bPoint, error) {
	type trialResult struct {
		batch, mpi time.Duration
		ok         bool
	}
	results := make([]trialResult, maxACs*trials)
	err := forEach(len(results), func(i int) error {
		y := i/trials + 1
		trial := i % trials
		var stats dac.Stats
		var mu sync.Mutex
		tp := p
		tp.Seed = uint64(trial + 1)
		err := cluster.Run(tp, func(c *cluster.Cluster, client *pbs.Client) {
			id, err := client.Submit(pbs.JobSpec{
				Name: "fig7b", Owner: "exp", Nodes: 1, PPN: 1, ACPN: 0, Walltime: time.Minute,
				Script: func(env *pbs.JobEnv) {
					ac, _, err := dac.Init(env)
					if err != nil {
						return
					}
					defer ac.Finalize()
					clientID, _, err := ac.Get(y)
					if err == nil {
						ac.Free(clientID)
					}
					mu.Lock()
					stats = ac.Stats()
					mu.Unlock()
				},
			})
			if err != nil {
				return
			}
			client.Wait(id)
		})
		if err != nil {
			return fmt.Errorf("core: Fig7b y=%d: %w", y, err)
		}
		mu.Lock()
		if len(stats.Gets) == 1 && !stats.Gets[0].Rejected {
			results[i] = trialResult{batch: stats.Gets[0].Batch, mpi: stats.Gets[0].MPI, ok: true}
		}
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []Fig7bPoint
	for y := 1; y <= maxACs; y++ {
		var batch, mpiT metrics.Sample
		for trial := 0; trial < trials; trial++ {
			r := results[(y-1)*trials+trial]
			if r.ok {
				batch.Add(r.batch)
				mpiT.Add(r.mpi)
			}
		}
		if batch.N() == 0 {
			return nil, fmt.Errorf("core: Fig7b y=%d: no successful dynamic request", y)
		}
		out = append(out, Fig7bPoint{
			Accelerators: y,
			Batch:        batch.Mean(),
			MPI:          mpiT.Mean(),
			Total:        batch.Mean() + mpiT.Mean(),
		})
	}
	return out, nil
}

// Fig8Point is one bar of Figure 8: dynamic allocation of one
// accelerator while the scheduler is busy with Load other requests.
type Fig8Point struct {
	Load       int
	SchedOther time.Duration // waiting caused by Maui scheduling other requests
	Service    time.Duration // servicing the dynamic request itself
	Total      time.Duration
}

// Fig8 measures the dynamic allocation latency under scheduler load.
// The background jobs request more compute nodes than exist, so they
// occupy scheduling cycles without ever touching the DAC job's
// resources, as the paper's setup requires.
func Fig8(p cluster.Params, loads []int, trials int) ([]Fig8Point, error) {
	p.ComputeNodes = 2
	p.Accelerators = 2
	measure := func(load int) (time.Duration, error) {
		batches := make([]time.Duration, trials)
		err := forEach(trials, func(trial int) error {
			var batch time.Duration
			var mu sync.Mutex
			s := sim.Acquire()
			defer s.Release()
			tp := p
			tp.Seed = uint64(trial + 1)
			c := cluster.New(s, tp)
			ready := newSignal(s, "ready")
			goahead := newSignal(s, "go")
			err := s.Run(func() {
				defer c.Close()
				c.Start()
				client := c.Client("front")
				id, err := client.Submit(pbs.JobSpec{
					Name: "fig8", Owner: "exp", Nodes: 1, PPN: 1, ACPN: 1, Walltime: time.Minute,
					Script: func(env *pbs.JobEnv) {
						ac, _, err := dac.Init(env)
						if err != nil {
							return
						}
						defer ac.Finalize()
						ready.fire()
						goahead.wait()
						clientID, _, err := ac.Get(1)
						if err == nil {
							ac.Free(clientID)
						}
						st := ac.Stats()
						mu.Lock()
						if len(st.Gets) > 0 {
							batch = st.Gets[0].Batch
						}
						mu.Unlock()
					},
				})
				if err != nil {
					return
				}
				ready.wait()
				if load > 0 {
					// Load the scheduler, wait until a cycle that
					// examines the whole backlog is in flight, then
					// release the dynamic request into it — the
					// paper's "request arrives while the scheduler is
					// already working on the earlier requests".
					c0 := c.Sched.Stats().Cycles
					for _, spec := range workload.Backlog(s, load, p.ComputeNodes+1) {
						if _, err := client.Submit(spec); err != nil {
							return
						}
					}
					for c.Sched.Stats().Cycles < c0+2 {
						s.Sleep(5 * time.Millisecond)
					}
					s.Sleep(10 * time.Millisecond)
				}
				goahead.fire()
				client.Wait(id)
			})
			if err != nil {
				return err
			}
			mu.Lock()
			batches[trial] = batch
			mu.Unlock()
			return nil
		})
		if err != nil {
			return 0, err
		}
		var total metrics.Sample
		for _, b := range batches {
			if b > 0 {
				total.Add(b)
			}
		}
		if total.N() == 0 {
			return 0, fmt.Errorf("core: Fig8 load measurement produced no data")
		}
		return total.Mean(), nil
	}

	base, err := measure(0)
	if err != nil {
		return nil, fmt.Errorf("core: Fig8 baseline: %w", err)
	}
	var out []Fig8Point
	for _, load := range loads {
		tot := base
		if load != 0 {
			tot, err = measure(load)
			if err != nil {
				return nil, fmt.Errorf("core: Fig8 load=%d: %w", load, err)
			}
		}
		sched := tot - base
		if sched < 0 {
			sched = 0
		}
		out = append(out, Fig8Point{Load: load, SchedOther: sched, Service: base, Total: tot})
	}
	return out, nil
}

// Fig9Point is one bar of Figure 9: the dynamic allocation time seen
// by one of three compute nodes requesting simultaneously.
type Fig9Point struct {
	Node  string
	Total time.Duration
}

// Fig9 has three distinct jobs (compute nodes A, B, C) issue one
// dynamic request each at the same time; the server's serial
// processing of dynamic requests makes later arrivals wait. Totals
// exclude the MPI operations, as in the paper.
func Fig9(p cluster.Params, trials int) ([]Fig9Point, error) {
	p.ComputeNodes = 3
	p.Accelerators = 6
	perTrial := make([][3]time.Duration, trials)
	errRun := forEach(trials, func(trial int) error {
		batches := make([]time.Duration, 3)
		var mu sync.Mutex
		s := sim.Acquire()
		defer s.Release()
		tp := p
		tp.Seed = uint64(trial + 1)
		c := cluster.New(s, tp)
		goahead := newSignal(s, "go")
		readies := make([]*signal, 3)
		for i := range readies {
			readies[i] = newSignal(s, fmt.Sprintf("ready%d", i))
		}
		err := s.Run(func() {
			defer c.Close()
			c.Start()
			client := c.Client("front")
			var ids []string
			for i := 0; i < 3; i++ {
				i := i
				id, err := client.Submit(pbs.JobSpec{
					Name: fmt.Sprintf("fig9-%c", 'A'+i), Owner: "exp",
					Nodes: 1, PPN: p.CoresPerNode, ACPN: 1, Walltime: time.Minute,
					Script: func(env *pbs.JobEnv) {
						ac, _, err := dac.Init(env)
						if err != nil {
							return
						}
						defer ac.Finalize()
						readies[i].fire()
						goahead.wait()
						// Deterministic arrival order A < B < C.
						s.Sleep(time.Duration(i) * time.Microsecond)
						clientID, _, err := ac.Get(1)
						if err == nil {
							ac.Free(clientID)
						}
						st := ac.Stats()
						mu.Lock()
						if len(st.Gets) > 0 {
							batches[i] = st.Gets[0].Batch
						}
						mu.Unlock()
					},
				})
				if err != nil {
					return
				}
				ids = append(ids, id)
			}
			for _, r := range readies {
				r.wait()
			}
			goahead.fire()
			for _, id := range ids {
				client.Wait(id)
			}
		})
		if err != nil {
			return fmt.Errorf("core: Fig9: %w", err)
		}
		mu.Lock()
		copy(perTrial[trial][:], batches)
		mu.Unlock()
		return nil
	})
	if errRun != nil {
		return nil, errRun
	}
	samples := make([]metrics.Sample, 3)
	for trial := 0; trial < trials; trial++ {
		for i, b := range perTrial[trial] {
			if b > 0 {
				samples[i].Add(b)
			}
		}
	}
	out := make([]Fig9Point, 3)
	for i := range out {
		out[i] = Fig9Point{Node: string(rune('A' + i)), Total: samples[i].Mean()}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Node < out[b].Node })
	return out, nil
}

// --- table renderers ---

// Fig7aTable renders Figure 7(a)'s series.
func Fig7aTable(points []Fig7aPoint) *metrics.Table {
	t := &metrics.Table{
		Title:   "Figure 7(a): time for completion of AC_Init() [ms]",
		Headers: []string{"accelerators", "waiting", "connect", "total"},
	}
	for _, pt := range points {
		t.AddRow(fmt.Sprint(pt.Accelerators), metrics.Ms(pt.Waiting), metrics.Ms(pt.Connect), metrics.Ms(pt.Total))
	}
	return t
}

// Fig7bTable renders Figure 7(b)'s series.
func Fig7bTable(points []Fig7bPoint) *metrics.Table {
	t := &metrics.Table{
		Title:   "Figure 7(b): time for completion of a dynamic request [ms]",
		Headers: []string{"accelerators", "batch_system", "rm_library", "total"},
	}
	for _, pt := range points {
		t.AddRow(fmt.Sprint(pt.Accelerators), metrics.Ms(pt.Batch), metrics.Ms(pt.MPI), metrics.Ms(pt.Total))
	}
	return t
}

// Fig8Table renders Figure 8's series.
func Fig8Table(points []Fig8Point) *metrics.Table {
	t := &metrics.Table{
		Title:   "Figure 8: dynamic allocation of one accelerator under load [ms]",
		Headers: []string{"jobs_on_load", "maui_other_requests", "service_dynamic", "total"},
	}
	for _, pt := range points {
		t.AddRow(fmt.Sprint(pt.Load), metrics.Ms(pt.SchedOther), metrics.Ms(pt.Service), metrics.Ms(pt.Total))
	}
	return t
}

// Fig9Table renders Figure 9's series.
func Fig9Table(points []Fig9Point) *metrics.Table {
	t := &metrics.Table{
		Title:   "Figure 9: consecutive dynamic requests from three compute nodes [ms]",
		Headers: []string{"compute_node", "time_for_dynamic_allocation"},
	}
	for _, pt := range points {
		t.AddRow(pt.Node, metrics.Ms(pt.Total))
	}
	return t
}
