package core

import (
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/dac"
	"repro/internal/pbs"
	"repro/internal/sim"
)

// TestFullSystemScenario is the capstone integration test: on one
// cluster it combines static allocation, dynamic growth and release,
// malleable compute-node growth, an accelerator failure survived by
// the application, a head-node restart under live jobs, and a final
// invariant check over accounting and node state.
func TestFullSystemScenario(t *testing.T) {
	p := cluster.Default()
	p.ComputeNodes = 3
	p.Accelerators = 5
	p.Mom.HeartbeatEvery = 30 * time.Millisecond
	p.Server.DeadAfter = 150 * time.Millisecond
	p.DAC.OpTimeout = 120 * time.Millisecond
	p.Maui.CycleInterval = 100 * time.Millisecond

	s := sim.New()
	s.SetDeadline(2 * time.Minute) // runaway guard
	c := cluster.New(s, p)

	var mu sync.Mutex
	var appLog []string
	note := func(format string, args ...any) {
		mu.Lock()
		appLog = append(appLog, format)
		mu.Unlock()
		_ = args
	}

	restartPoint := newSignal(s, "restart-point")
	err := s.Run(func() {
		defer c.Close()
		c.Start()
		client := c.Client("front")

		// Phase A: a DAC job that lives through everything below.
		survivor, err := client.Submit(pbs.JobSpec{
			Name: "survivor", Owner: "alice", Nodes: 1, PPN: 2, ACPN: 1, Walltime: time.Minute,
			Script: func(env *pbs.JobEnv) {
				ac, hs, err := dac.Init(env)
				if err != nil {
					t.Errorf("Init: %v", err)
					return
				}
				defer ac.Finalize()
				note("init")

				// Dynamic growth and use.
				setID, extra, err := ac.Get(2)
				if err != nil {
					t.Errorf("Get: %v", err)
					return
				}
				for _, h := range append(hs, extra...) {
					if _, err := ac.MemAlloc(h, 1024); err != nil {
						t.Errorf("MemAlloc on %s: %v", h.Host(), err)
						return
					}
				}
				note("grew")

				// The static accelerator dies; ops fail; app continues
				// on the dynamic pair.
				c.Net.SetHostDown(hs[0].Host(), true)
				if _, err := ac.MemAlloc(hs[0], 64); err == nil {
					t.Error("op on dead accelerator should fail")
				}
				if _, err := ac.MemAlloc(extra[0], 64); err != nil {
					t.Errorf("surviving accelerator broken: %v", err)
				}
				note("survived-ac-failure")

				// Wait out the failure detector, then release the set.
				c.Sim.Sleep(400 * time.Millisecond)
				if err := ac.Free(setID); err != nil {
					t.Errorf("Free: %v", err)
				}

				// Malleable growth of compute nodes.
				cl := pbs.NewClient(c.Net, env.Host, env.ServerEP)
				grant, err := cl.DynGetNodes(env.JobID, env.Host, 1, 2)
				if err != nil {
					t.Errorf("DynGetNodes: %v", err)
					return
				}
				if err := cl.DynFree(env.JobID, grant.ClientID); err != nil {
					t.Errorf("DynFree nodes: %v", err)
				}
				note("malleable")
				// The head node restarts while this job keeps
				// computing.
				restartPoint.fire()
				c.Sim.Sleep(300 * time.Millisecond)
			},
		})
		if err != nil {
			t.Errorf("Submit: %v", err)
			return
		}

		// Phase B: while that still runs, restart the head node.
		restartPoint.wait()
		snap := c.Server.Checkpoint()
		c.Server.Stop()
		s.Sleep(20 * time.Millisecond)
		replacement := pbs.NewServer(c.Net, p.Server)
		replacement.SetScheduler(c.Sched.Endpoint())
		if err := replacement.Restore(snap); err != nil {
			t.Errorf("Restore: %v", err)
			return
		}
		replacement.Start()

		// Phase C: batch jobs keep flowing through the new server.
		var ids []string
		for i := 0; i < 3; i++ {
			id, err := client.Submit(pbs.JobSpec{
				Name: "batch", Owner: "bob", Nodes: 1, PPN: 4, Walltime: time.Second,
				Script: func(env *pbs.JobEnv) { s.Sleep(50 * time.Millisecond) },
			})
			if err != nil {
				t.Errorf("Submit after restart: %v", err)
				return
			}
			ids = append(ids, id)
		}

		final, err := client.Wait(survivor)
		if err != nil {
			t.Errorf("Wait(survivor): %v", err)
			return
		}
		if final.State != pbs.JobCompleted {
			t.Errorf("survivor state = %v", final.State)
		}
		for _, id := range ids {
			info, err := client.Wait(id)
			if err != nil || info.State != pbs.JobCompleted {
				t.Errorf("batch job %s: %v %v", id, info.State, err)
			}
		}

		// Invariants at the end of the day.
		nodes, _ := client.Nodes()
		downs := 0
		for _, n := range nodes {
			if n.Down {
				downs++
				continue
			}
			if len(n.Jobs) != 0 {
				t.Errorf("node %s leaked %v", n.Name, n.Jobs)
			}
		}
		if downs != 1 {
			t.Errorf("down nodes = %d, want exactly the killed accelerator", downs)
		}
		recs := replacement.AccountingLog()
		if len(recs) == 0 {
			t.Error("replacement server kept no accounting records")
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	want := []string{"init", "grew", "survived-ac-failure", "malleable"}
	if len(appLog) != len(want) {
		t.Fatalf("app log = %v", appLog)
	}
	for i := range want {
		if appLog[i] != want[i] {
			t.Fatalf("app log = %v, want %v", appLog, want)
		}
	}
}
