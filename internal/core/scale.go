package core

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/dac"
	"repro/internal/metrics"
	"repro/internal/pbs"
	"repro/internal/sim"
	"repro/internal/workload"
)

// The scale experiment extends the paper's 8-node evaluation to the
// cluster sizes its Section VI outlook targets: it grows the testbed
// to hundreds of compute nodes and thousands of network-attached
// accelerators, replays an SWF batch workload through the extended
// TORQUE/Maui stack, and reports how the scheduler cycle time and the
// latency of a dynamic request evolve with cluster size.
//
// Every reported quantity is virtual time: wall-clock measurement is
// confined to the CLI layer (cmd/dacsim, cmd/dacbench) so the series
// and their rendered tables are byte-identical run to run — the
// walltime analyzer in internal/lint enforces this.

// ScalePoint is one row of the scale table: a cluster of
// ComputeNodes/Accelerators working through Jobs trace jobs.
type ScalePoint struct {
	ComputeNodes int
	Accelerators int
	Jobs         int
	CycleMean    time.Duration // mean virtual scheduler cycle time
	CycleMax     time.Duration // longest virtual scheduler cycle
	DynLatency   time.Duration // dynamic request under full load (batch + MPI)
	Makespan     time.Duration // virtual time to drain the trace
}

// ScaleSizes is the default compute-node axis; with ACsPerCN and
// JobsPerCN the largest point is 256 nodes, 2048 accelerators, and
// 2048 trace jobs.
var ScaleSizes = []int{8, 32, 64, 128, 256}

// ACsPerCN and JobsPerCN set how accelerators and workload grow with
// the compute-node count.
const (
	ACsPerCN  = 8
	JobsPerCN = 8
)

// scaleWorkloadSWF synthesizes a Standard Workload Format trace for a
// cluster of n compute nodes: jobs arrive over a fixed submission
// window with runtimes, widths, and estimates drawn from a
// deterministic LCG, so every run of the experiment sees the same
// trace. Emitting SWF text and parsing it back through ParseSWF
// exercises the same import path a production trace would use.
func scaleWorkloadSWF(n, jobs, coresPerNode int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "; synthetic scale workload: %d jobs for %d compute nodes\n", jobs, n)
	state := uint64(n)*2654435761 + 12345
	next := func(mod int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(mod))
	}
	window := 60 // submission window in seconds
	for j := 0; j < jobs; j++ {
		submit := j * window / jobs
		runSec := 1 + next(8)                 // 1..8 s
		procs := 1 + next(2*coresPerNode)     // up to two nodes wide
		reqSec := runSec + 1 + next(2*runSec) // loose estimate, room for backfill
		uid := next(16)
		// 18 SWF fields: job, submit, wait, run, procs-used, cpu, mem,
		// procs-req, time-req, mem-req, status, uid, gid, exe, queue,
		// partition, prev-job, think-time.
		fmt.Fprintf(&b, "%d %d -1 %d %d -1 -1 %d %d -1 1 %d -1 -1 -1 -1 -1 -1\n",
			j+1, submit, runSec, procs, procs, reqSec, uid)
	}
	return b.String()
}

// scaleParams derives a cheap cost model from the calibrated one: the
// paper-calibrated per-job and per-cycle costs are sized for a 7-node
// testbed and would dominate virtual time at 256 nodes, so the scale
// run shrinks them while keeping every mechanism (priority, backfill,
// dynamic top-priority) active.
func scaleParams(p cluster.Params, n int) cluster.Params {
	tp := p
	tp.ComputeNodes = n
	tp.Accelerators = n * ACsPerCN
	tp.Seed = uint64(n)
	tp.Maui.CycleInterval = 250 * time.Millisecond
	tp.Maui.CycleOverhead = 10 * time.Millisecond
	tp.Maui.PerJobCost = 200 * time.Microsecond
	tp.Maui.DynPerReqCost = time.Millisecond
	tp.Server.Processing = time.Millisecond
	return tp
}

// Scale runs the scale experiment for the given compute-node counts
// (ScaleSizes when nil). Each point is an independent simulation, so
// the points fan out over the trial worker pool; results are reported
// in input order.
func Scale(p cluster.Params, sizes []int) ([]ScalePoint, error) {
	if len(sizes) == 0 {
		sizes = ScaleSizes
	}
	out := make([]ScalePoint, len(sizes))
	err := forEach(len(sizes), func(idx int) error {
		n := sizes[idx]
		if n < 1 {
			return fmt.Errorf("core: Scale size %d", n)
		}
		tp := scaleParams(p, n)
		jobs := n * JobsPerCN
		entries, err := workload.ParseSWF(strings.NewReader(scaleWorkloadSWF(n, jobs, tp.CoresPerNode)), tp.CoresPerNode)
		if err != nil {
			return fmt.Errorf("core: Scale n=%d: %w", n, err)
		}

		s := sim.Acquire()
		defer s.Release()
		c := cluster.New(s, tp)
		var pt ScalePoint
		var ptMu sync.Mutex
		probeReady := newSignal(s, "scale-ready")
		goahead := newSignal(s, "scale-go")
		runErr := s.Run(func() {
			defer c.Close()
			c.Start()
			client := c.Client("front")

			// The probe job starts on the idle cluster and holds one
			// core; once the trace is fully submitted it issues one
			// dynamic request into the loaded scheduler.
			probeID, err := client.Submit(pbs.JobSpec{
				Name: "scale-probe", Owner: "exp", Nodes: 1, PPN: 1, ACPN: 0,
				Walltime: time.Hour,
				Script: func(env *pbs.JobEnv) {
					ac, _, err := dac.Init(env)
					if err != nil {
						return
					}
					defer ac.Finalize()
					probeReady.fire()
					goahead.wait()
					clientID, _, err := ac.Get(1)
					if err == nil {
						ac.Free(clientID)
					}
					st := ac.Stats()
					ptMu.Lock()
					if len(st.Gets) > 0 && !st.Gets[0].Rejected {
						pt.DynLatency = st.Gets[0].Batch + st.Gets[0].MPI
					}
					ptMu.Unlock()
				},
			})
			if err != nil {
				return
			}
			probeReady.wait()

			ids, err := workload.Replay(s, client, entries)
			if err != nil {
				return
			}
			goahead.fire()
			for _, id := range ids {
				client.Wait(id)
			}
			client.Wait(probeID)
			ptMu.Lock()
			pt.Makespan = s.Now()
			if c.Sched != nil {
				st := c.Sched.Stats()
				pt.CycleMean = st.CycleTimeMean()
				pt.CycleMax = st.CycleTimeMax
			}
			ptMu.Unlock()
		})
		if runErr != nil {
			return fmt.Errorf("core: Scale n=%d: %w", n, runErr)
		}
		pt.ComputeNodes = n
		pt.Accelerators = tp.Accelerators
		pt.Jobs = len(entries)
		out[idx] = pt
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ScaleTable renders the scale series in the style of the paper's
// measurement tables.
func ScaleTable(points []ScalePoint) *metrics.Table {
	t := &metrics.Table{
		Title: "Scale: scheduler cycle time and dynamic-request latency vs cluster size",
		Headers: []string{"compute_nodes", "accelerators", "jobs",
			"cycle_mean_ms", "cycle_max_ms", "dyn_latency_ms", "makespan_ms"},
	}
	for _, pt := range points {
		t.AddRow(
			fmt.Sprint(pt.ComputeNodes), fmt.Sprint(pt.Accelerators), fmt.Sprint(pt.Jobs),
			metrics.Ms(pt.CycleMean), metrics.Ms(pt.CycleMax), metrics.Ms(pt.DynLatency),
			metrics.Ms(pt.Makespan),
		)
	}
	return t
}
