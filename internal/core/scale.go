package core

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/audit"
	"repro/internal/cluster"
	"repro/internal/dac"
	"repro/internal/metrics"
	"repro/internal/pbs"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// The scale experiment extends the paper's 8-node evaluation to the
// cluster sizes its Section VI outlook targets: it grows the testbed
// to hundreds of compute nodes and thousands of network-attached
// accelerators, replays an SWF batch workload through the extended
// TORQUE/Maui stack, and reports how the scheduler cycle time and the
// latency of a dynamic request evolve with cluster size.
//
// Every reported quantity is virtual time: wall-clock measurement is
// confined to the CLI layer (cmd/dacsim, cmd/dacbench) so the series
// and their rendered tables are byte-identical run to run — the
// walltime analyzer in internal/lint enforces this.

// ScalePoint is one row of the scale table: a cluster of
// ComputeNodes/Accelerators working through Jobs trace jobs.
type ScalePoint struct {
	ComputeNodes int
	Accelerators int
	Jobs         int
	CycleMean    time.Duration // mean virtual scheduler cycle time
	CycleMax     time.Duration // longest virtual scheduler cycle
	DynLatency   time.Duration // dynamic request under full load (batch + MPI)
	Makespan     time.Duration // virtual time to drain the trace

	// Sharded-mode extras (zero in faithful runs): the server/scheduler
	// fan-out and the dynamic-request latency distribution observed by
	// the prober stream, scraped from the point's telemetry registry.
	Shards     int
	Partitions int
	Probers    int
	DynP50     time.Duration
	DynP99     time.Duration
	ShardBusy  float64 // mean per-shard busy fraction over the makespan
}

// ServerMode selects the server/scheduler implementation for the
// scale ladder ablation: the faithful mode reproduces the paper's
// single serial pbs_server and global Maui cycle, the sharded mode
// enables the partitioned fast path (Server.Shards, Maui.Partitions).
type ServerMode string

const (
	ServerFaithful ServerMode = "faithful"
	ServerSharded  ServerMode = "sharded"
)

// ParseServerMode maps a CLI -server flag value to a ServerMode.
func ParseServerMode(s string) (ServerMode, error) {
	switch s {
	case "", string(ServerFaithful):
		return ServerFaithful, nil
	case string(ServerSharded):
		return ServerSharded, nil
	}
	return "", fmt.Errorf("core: unknown server mode %q (want faithful or sharded)", s)
}

// ScaleSizes is the default compute-node axis; with ACsPerCN and
// JobsPerCN the largest point is 256 nodes, 2048 accelerators, and
// 2048 trace jobs.
var ScaleSizes = []int{8, 32, 64, 128, 256}

// ScaleSizesExtended continues the ladder to the cluster sizes the
// paper's Section VI outlook targets; the top rungs are only
// tractable in virtual time once the sharded fast path amortizes the
// serial per-request and per-job costs.
var ScaleSizesExtended = []int{8, 32, 64, 128, 256, 1024, 4096}

// ShardsFor sizes the pbs_server shard pool for an n-node cluster:
// one shard per 64 compute nodes, clamped to [4, 64].
func ShardsFor(n int) int {
	s := n / 64
	if s < 4 {
		s = 4
	}
	if s > 64 {
		s = 64
	}
	return s
}

// PartitionsFor sizes the Maui cycle partitioning for an n-node
// cluster: one partition per 128 compute nodes, clamped to [2, 32].
func PartitionsFor(n int) int {
	p := n / 128
	if p < 2 {
		p = 2
	}
	if p > 32 {
		p = 32
	}
	return p
}

// applyShardedParams switches a parameter set from the faithful
// serial server to the sharded ablation at size n.
func applyShardedParams(tp *cluster.Params, n int) {
	tp.Server.Shards = ShardsFor(n)
	tp.Maui.Partitions = PartitionsFor(n)
}

// ACsPerCN and JobsPerCN set how accelerators and workload grow with
// the compute-node count.
const (
	ACsPerCN  = 8
	JobsPerCN = 8
)

// scaleWorkloadSWF synthesizes a Standard Workload Format trace for a
// cluster of n compute nodes: jobs arrive over a fixed submission
// window with runtimes, widths, and estimates drawn from a
// deterministic LCG, so every run of the experiment sees the same
// trace. seed perturbs the stream (seed 0 reproduces the historical
// trace byte for byte); distinct seeds give the two-seed recordings
// the audit diff in CI compares. Emitting SWF text and parsing it
// back through ParseSWF exercises the same import path a production
// trace would use.
func scaleWorkloadSWF(n, jobs, coresPerNode int, seed uint64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "; synthetic scale workload: %d jobs for %d compute nodes\n", jobs, n)
	state := (uint64(n)+seed)*2654435761 + 12345
	next := func(mod int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(mod))
	}
	window := 60 // submission window in seconds
	for j := 0; j < jobs; j++ {
		submit := j * window / jobs
		runSec := 1 + next(8)                 // 1..8 s
		procs := 1 + next(2*coresPerNode)     // up to two nodes wide
		reqSec := runSec + 1 + next(2*runSec) // loose estimate, room for backfill
		uid := next(16)
		// 18 SWF fields: job, submit, wait, run, procs-used, cpu, mem,
		// procs-req, time-req, mem-req, status, uid, gid, exe, queue,
		// partition, prev-job, think-time.
		fmt.Fprintf(&b, "%d %d -1 %d %d -1 -1 %d %d -1 1 %d -1 -1 -1 -1 -1 -1\n",
			j+1, submit, runSec, procs, procs, reqSec, uid)
	}
	return b.String()
}

// scaleParams derives a cheap cost model from the calibrated one: the
// paper-calibrated per-job and per-cycle costs are sized for a 7-node
// testbed and would dominate virtual time at 256 nodes, so the scale
// run shrinks them while keeping every mechanism (priority, backfill,
// dynamic top-priority) active.
func scaleParams(p cluster.Params, n int) cluster.Params {
	tp := p
	tp.ComputeNodes = n
	tp.Accelerators = n * ACsPerCN
	tp.Seed = uint64(n) + p.Seed
	tp.Maui.CycleInterval = 250 * time.Millisecond
	tp.Maui.CycleOverhead = 10 * time.Millisecond
	tp.Maui.PerJobCost = 200 * time.Microsecond
	tp.Maui.DynPerReqCost = time.Millisecond
	tp.Server.Processing = time.Millisecond
	return tp
}

// Scale runs the scale experiment for the given compute-node counts
// (ScaleSizes when nil). Each point is an independent simulation, so
// the points fan out over the trial worker pool; results are reported
// in input order.
func Scale(p cluster.Params, sizes []int) ([]ScalePoint, error) {
	return ScaleMode(p, sizes, ServerFaithful)
}

// ScaleMode runs the scale ladder under the chosen server mode. The
// faithful mode executes exactly the code path Scale always ran, so
// its figures stay byte-identical; the sharded mode additionally
// drives an open-loop prober stream (the single-probe latency of the
// faithful figure carries no tail signal) and reports dynamic-request
// p50/p99 and per-shard occupancy from the point's private registry.
func ScaleMode(p cluster.Params, sizes []int, mode ServerMode) ([]ScalePoint, error) {
	if len(sizes) == 0 {
		sizes = ScaleSizes
	}
	out := make([]ScalePoint, len(sizes))
	err := forEach(len(sizes), func(idx int) error {
		n := sizes[idx]
		if n < 1 {
			return fmt.Errorf("core: Scale size %d", n)
		}
		var err error
		if mode == ServerSharded {
			out[idx], err = scalePointSharded(p, n, nil)
		} else {
			out[idx], err = scalePointFaithful(p, n, nil)
		}
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// scalePointFaithful is the original per-point body of Scale,
// unchanged: one probe job measures a single dynamic request under
// full load. A non-nil rec attaches the flight recorder to the
// point's simulation and digests its state on the scrape cadence.
func scalePointFaithful(p cluster.Params, n int, rec *audit.Recorder) (ScalePoint, error) {
	tp := scaleParams(p, n)
	tp.Audit = rec
	jobs := n * JobsPerCN
	entries, err := workload.ParseSWF(strings.NewReader(scaleWorkloadSWF(n, jobs, tp.CoresPerNode, p.Seed)), tp.CoresPerNode)
	if err != nil {
		return ScalePoint{}, fmt.Errorf("core: Scale n=%d: %w", n, err)
	}

	s := sim.Acquire()
	defer s.Release()
	c := cluster.New(s, tp)
	tick := audit.NewTicker(rec, s, SLOScrapeInterval)
	var pt ScalePoint
	var ptMu sync.Mutex
	probeReady := newSignal(s, "scale-ready")
	goahead := newSignal(s, "scale-go")
	runErr := s.Run(func() {
		defer c.Close()
		tick.Start()
		c.Start()
		client := c.Client("front")

		// The probe job starts on the idle cluster and holds one
		// core; once the trace is fully submitted it issues one
		// dynamic request into the loaded scheduler.
		probeID, err := client.Submit(pbs.JobSpec{
			Name: "scale-probe", Owner: "exp", Nodes: 1, PPN: 1, ACPN: 0,
			Walltime: time.Hour,
			Script: func(env *pbs.JobEnv) {
				ac, _, err := dac.Init(env)
				if err != nil {
					return
				}
				defer ac.Finalize()
				probeReady.fire()
				goahead.wait()
				clientID, _, err := ac.Get(1)
				if err == nil {
					ac.Free(clientID)
				}
				st := ac.Stats()
				ptMu.Lock()
				if len(st.Gets) > 0 && !st.Gets[0].Rejected {
					pt.DynLatency = st.Gets[0].Batch + st.Gets[0].MPI
				}
				ptMu.Unlock()
			},
		})
		if err != nil {
			return
		}
		probeReady.wait()

		ids, err := workload.Replay(s, client, entries)
		if err != nil {
			return
		}
		goahead.fire()
		for _, id := range ids {
			client.Wait(id)
		}
		client.Wait(probeID)
		tick.Stop()
		ptMu.Lock()
		pt.Makespan = s.Now()
		if c.Sched != nil {
			st := c.Sched.Stats()
			pt.CycleMean = st.CycleTimeMean()
			pt.CycleMax = st.CycleTimeMax
		}
		ptMu.Unlock()
	})
	if runErr != nil {
		return ScalePoint{}, fmt.Errorf("core: Scale n=%d: %w", n, runErr)
	}
	pt.ComputeNodes = n
	pt.Accelerators = tp.Accelerators
	pt.Jobs = len(entries)
	return pt, nil
}

// scaleProbers sets the width of the sharded ladder's open-loop
// dynamic-request stream: one prober per 64 compute nodes, clamped to
// [2, 64] so the tail quantiles carry samples without the probers
// becoming the workload.
func scaleProbers(n int) int {
	p := n / 64
	if p < 2 {
		p = 2
	}
	if p > 64 {
		p = 64
	}
	return p
}

// Pacing of the sharded ladder's prober stream. Shorter than the slo
// figure's stream: the ladder's top rungs replay 32k jobs, so each
// prober issues a dozen paced requests across the drain.
const (
	scaleProbePace = 3 * time.Second
	scaleProbeHold = 250 * time.Millisecond
	scaleProbeReqs = 12
)

// scalePointSharded runs one ladder point with the partitioned server
// and scheduler. A private telemetry registry instruments the run;
// the row reports the prober stream's dyn-latency p50/p99 and the
// mean per-shard busy fraction alongside the faithful columns.
func scalePointSharded(p cluster.Params, n int, rec *audit.Recorder) (ScalePoint, error) {
	tp := scaleParams(p, n)
	applyShardedParams(&tp, n)
	reg := telemetry.New()
	tp.Telemetry = reg
	tp.Audit = rec
	jobs := n * JobsPerCN
	entries, err := workload.ParseSWF(strings.NewReader(scaleWorkloadSWF(n, jobs, tp.CoresPerNode, p.Seed)), tp.CoresPerNode)
	if err != nil {
		return ScalePoint{}, fmt.Errorf("core: Scale n=%d: %w", n, err)
	}

	s := sim.Acquire()
	defer s.Release()
	c := cluster.New(s, tp)
	tick := audit.NewTicker(rec, s, SLOScrapeInterval)
	probers := scaleProbers(n)
	var pt ScalePoint
	var ptMu sync.Mutex
	ready := make([]*signal, probers)
	for i := range ready {
		ready[i] = newSignal(s, fmt.Sprintf("scale-ready-%d", i))
	}
	goahead := newSignal(s, "scale-go")
	runErr := s.Run(func() {
		defer c.Close()
		tick.Start()
		c.Start()
		client := c.Client("front")

		// The probers start on the idle cluster and hold one core each;
		// once the trace is fully submitted they issue an open-loop
		// stream of paced dynamic requests, staggered so their phases
		// differ. The first request's batch+MPI latency fills the
		// faithful DynLatency column; the registry's histogram carries
		// the distribution.
		proberIDs := make([]string, 0, probers)
		for i := 0; i < probers; i++ {
			i := i
			id, err := client.Submit(pbs.JobSpec{
				Name: fmt.Sprintf("scale-probe-%d", i), Owner: "exp",
				Nodes: 1, PPN: 1, ACPN: 0, Walltime: time.Hour,
				Script: func(env *pbs.JobEnv) {
					ac, _, err := dac.Init(env)
					if err != nil {
						return
					}
					defer ac.Finalize()
					ready[i].fire()
					goahead.wait()
					s.Sleep(scaleProbePace * time.Duration(i) / time.Duration(probers))
					for r := 0; r < scaleProbeReqs; r++ {
						clientID, _, err := ac.Get(1)
						if err == nil {
							s.Sleep(scaleProbeHold)
							ac.Free(clientID)
						}
						s.Sleep(scaleProbePace)
					}
					if i == 0 {
						st := ac.Stats()
						ptMu.Lock()
						if len(st.Gets) > 0 && !st.Gets[0].Rejected {
							pt.DynLatency = st.Gets[0].Batch + st.Gets[0].MPI
						}
						ptMu.Unlock()
					}
				},
			})
			if err != nil {
				return
			}
			proberIDs = append(proberIDs, id)
		}
		for _, sg := range ready {
			sg.wait()
		}

		ids, err := workload.Replay(s, client, entries)
		if err != nil {
			return
		}
		goahead.fire()
		for _, id := range ids {
			client.Wait(id)
		}
		for _, id := range proberIDs {
			client.Wait(id)
		}
		tick.Stop()
		ptMu.Lock()
		pt.Makespan = s.Now()
		if c.Sched != nil {
			st := c.Sched.Stats()
			pt.CycleMean = st.CycleTimeMean()
			pt.CycleMax = st.CycleTimeMax
		}
		ptMu.Unlock()
	})
	if runErr != nil {
		return ScalePoint{}, fmt.Errorf("core: Scale n=%d: %w", n, runErr)
	}
	pt.ComputeNodes = n
	pt.Accelerators = tp.Accelerators
	pt.Jobs = len(entries)
	pt.Shards = tp.Server.Shards
	pt.Partitions = tp.Maui.Partitions
	pt.Probers = probers
	dyn := reg.Histogram("pbs.dyn_latency")
	pt.DynP50 = dyn.Quantile(0.50)
	pt.DynP99 = dyn.Quantile(0.99)
	if busy := reg.Occupancy("pbs.shard_occupancy").Busy(); pt.Makespan > 0 && pt.Shards > 0 {
		pt.ShardBusy = busy.Seconds() / (pt.Makespan.Seconds() * float64(pt.Shards))
	}
	return pt, nil
}

// ScaleTable renders the scale series in the style of the paper's
// measurement tables.
func ScaleTable(points []ScalePoint) *metrics.Table {
	t := &metrics.Table{
		Title: "Scale: scheduler cycle time and dynamic-request latency vs cluster size",
		Headers: []string{"compute_nodes", "accelerators", "jobs",
			"cycle_mean_ms", "cycle_max_ms", "dyn_latency_ms", "makespan_ms"},
	}
	for _, pt := range points {
		t.AddRow(
			fmt.Sprint(pt.ComputeNodes), fmt.Sprint(pt.Accelerators), fmt.Sprint(pt.Jobs),
			metrics.Ms(pt.CycleMean), metrics.Ms(pt.CycleMax), metrics.Ms(pt.DynLatency),
			metrics.Ms(pt.Makespan),
		)
	}
	return t
}

// ScaleShardedTable renders the sharded ladder with its extra
// telemetry columns: the shard/partition fan-out, the prober stream's
// dynamic-latency quantiles, and the mean per-shard busy fraction.
func ScaleShardedTable(points []ScalePoint) *metrics.Table {
	t := &metrics.Table{
		Title: "Scale (sharded server): cycle time and dyn-latency quantiles vs cluster size",
		Headers: []string{"compute_nodes", "jobs", "shards", "partitions", "probers",
			"cycle_mean_ms", "cycle_max_ms", "dyn_p50_ms", "dyn_p99_ms",
			"shard_busy", "makespan_ms"},
	}
	for _, pt := range points {
		t.AddRow(
			fmt.Sprint(pt.ComputeNodes), fmt.Sprint(pt.Jobs),
			fmt.Sprint(pt.Shards), fmt.Sprint(pt.Partitions), fmt.Sprint(pt.Probers),
			metrics.Ms(pt.CycleMean), metrics.Ms(pt.CycleMax),
			metrics.Ms(pt.DynP50), metrics.Ms(pt.DynP99),
			fmt.Sprintf("%.4f", pt.ShardBusy),
			metrics.Ms(pt.Makespan),
		)
	}
	return t
}
