package core

import (
	"strings"
	"testing"

	"repro/internal/audit"
	"repro/internal/cluster"
)

// sameRecording compares two event streams field-for-field, including
// sequence numbers and virtual timestamps — the strongest identity an
// audited run can claim.
func sameRecording(a, b []audit.Event) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// A clean audited ladder reports zero invariant breaches, and each
// point's recording is byte-identical whether the points ran serially
// or fanned out over the trial worker pool: every point owns its
// simulation, so trial parallelism cannot reorder its events.
func TestScaleAuditedCleanAndParallelismInvariant(t *testing.T) {
	sizes := []int{8, 16}

	defer SetParallelism(Parallelism())
	SetParallelism(1)
	serial, err := ScaleAudited(cluster.Default(), sizes, ServerFaithful)
	if err != nil {
		t.Fatalf("ScaleAudited serial: %v", err)
	}
	SetParallelism(4)
	fanned, err := ScaleAudited(cluster.Default(), sizes, ServerFaithful)
	if err != nil {
		t.Fatalf("ScaleAudited parallel: %v", err)
	}

	for i, pt := range serial {
		if pt.Checks == 0 {
			t.Errorf("n=%d: invariant engine never ran", pt.ComputeNodes)
		}
		if pt.Breaches != 0 {
			t.Errorf("n=%d: %d invariant breaches on a clean run", pt.ComputeNodes, pt.Breaches)
		}
		if pt.Dropped != 0 {
			t.Errorf("n=%d: ring dropped %d events", pt.ComputeNodes, pt.Dropped)
		}
		if pt.Rounds == 0 {
			t.Errorf("n=%d: no digest rounds captured", pt.ComputeNodes)
		}
		if len(pt.Events) == 0 {
			t.Fatalf("n=%d: empty recording", pt.ComputeNodes)
		}
		if !sameRecording(pt.Events, fanned[i].Events) {
			d := audit.Diff(pt.Events, fanned[i].Events, 2)
			t.Fatalf("n=%d: recording differs across parallelism levels: first divergence at event %d (component %s)",
				pt.ComputeNodes, d.Index, d.Comp())
		}
	}
}

// The serial and sharded server implementations must agree on the
// end-of-run job-index digest when driven by the same workload:
// sharding changes scheduling interleavings and node placement, but
// every job still runs exactly once and ends in the same terminal
// state. (The sharded *ladder* body is not comparable directly — it
// drives a wider prober stream — so this test enables the sharded
// fast path underneath the faithful point body.)
func TestScaleAuditedModeDigestIdentity(t *testing.T) {
	const n = 8
	runOne := func(p cluster.Params) *AuditedPoint {
		t.Helper()
		rec := audit.New(AuditCapacity)
		pt, err := scalePointFaithful(p, n, rec)
		if err != nil {
			t.Fatalf("scalePointFaithful: %v", err)
		}
		return &AuditedPoint{
			ScalePoint: pt,
			Events:     rec.Events(),
			Checks:     rec.Checks(),
			Breaches:   rec.Breaches(),
		}
	}
	serial := runOne(cluster.Default())
	shardedParams := cluster.Default()
	shardedParams.Server.Shards = ShardsFor(n)
	shardedParams.Maui.Partitions = PartitionsFor(n)
	sharded := runOne(shardedParams)

	if b := serial.Breaches + sharded.Breaches; b != 0 {
		t.Fatalf("%d invariant breaches across modes", b)
	}
	df := serial.FinalDigests()
	ds := sharded.FinalDigests()
	sum, ok := df["pbs.jobs"]
	if !ok {
		t.Fatalf("serial run captured no pbs.jobs digest (have %v)", df)
	}
	if got, ok := ds["pbs.jobs"]; !ok || got != sum {
		t.Fatalf("pbs.jobs digest differs across server modes: serial %#x, sharded %#x (ok=%v)", sum, got, ok)
	}
}

// Distinct workload seeds must yield recordings that diverge — the
// property the CI audit smoke step demonstrates with dacaudit -diff.
func TestScaleAuditedSeedsDiverge(t *testing.T) {
	base := cluster.Default()
	a, err := ScaleAudited(base, []int{8}, ServerFaithful)
	if err != nil {
		t.Fatalf("ScaleAudited seed 0: %v", err)
	}
	seeded := base
	seeded.Seed = 7
	b, err := ScaleAudited(seeded, []int{8}, ServerFaithful)
	if err != nil {
		t.Fatalf("ScaleAudited seed 7: %v", err)
	}
	d := audit.Diff(a[0].Events, b[0].Events, 3)
	if d == nil {
		t.Fatal("recordings with distinct seeds are identical")
	}
	if d.Comp() == "?" {
		t.Fatalf("divergence names no component: %+v", d)
	}
}

func TestAuditTableRenders(t *testing.T) {
	pts := []AuditedPoint{{
		ScalePoint: ScalePoint{ComputeNodes: 8, Jobs: 64},
		Events:     []audit.Event{{Kind: audit.KindJob, Comp: "pbs"}},
		Checks:     120, Breaches: 0, Rounds: 3,
	}}
	var sb strings.Builder
	if err := AuditTable(pts).Render(&sb); err != nil {
		t.Fatalf("render: %v", err)
	}
	for _, want := range []string{"checks", "breaches", "digest_rounds", "120"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("table missing %q:\n%s", want, sb.String())
		}
	}
}
