package core

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/dac"
	"repro/internal/metrics"
	"repro/internal/pbs"
	"repro/internal/prof"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// The breakdown experiment is the profiler's view of the scale
// ladder: it replays the synthetic SWF workload of the scale
// experiment on clusters of growing size, records every layer's spans
// into a per-size tracer, and lets internal/prof attribute each job's
// end-to-end latency — and the probe's dynamic request — to exact
// causal phases. It generalizes the paper's hand-made decompositions
// (Figures 7(a), 7(b), and 8: static allocation overhead vs dynamic
// request overhead) to whole workloads at 8→256 compute nodes.

// BreakdownPoint is one row of the breakdown figure: the per-phase
// mean decomposition of job latency at one cluster size.
type BreakdownPoint struct {
	ComputeNodes int
	Accelerators int
	Jobs         int // jobs fully attributed
	Incomplete   int // causal chains the profiler could not close
	// Static holds the per-phase means in prof.StaticPhases order;
	// Dyn the probe request's phases in prof.DynPhases order.
	Static   []prof.Phase
	Dyn      []prof.Phase
	Total    time.Duration // mean end-to-end job latency
	DynTotal time.Duration // mean dynamic request latency
	// Top are the largest critical-path owners across all jobs.
	Top []prof.OwnerShare
}

// Breakdown runs the profiler over the scale ladder (ScaleSizes when
// sizes is nil). Each size is an independent simulation with a
// private tracer, so the points fan out over the trial worker pool
// and the result is byte-identical at every parallelism level.
// capture, when non-nil, receives each size's raw span stream (in
// input order, after all runs complete) — the hook dacsim uses to
// write profiler capture files.
func Breakdown(p cluster.Params, sizes []int, capture func(computeNodes int, events []trace.Event)) ([]BreakdownPoint, error) {
	return BreakdownMode(p, sizes, ServerFaithful, capture)
}

// BreakdownMode is Breakdown with a server-mode selector: the sharded
// mode profiles the same workload through the partitioned server and
// scheduler, so a dacprof -diff of the two capture sets attributes
// exactly which phases the sharding buys back.
func BreakdownMode(p cluster.Params, sizes []int, mode ServerMode, capture func(computeNodes int, events []trace.Event)) ([]BreakdownPoint, error) {
	if len(sizes) == 0 {
		sizes = ScaleSizes
	}
	out := make([]BreakdownPoint, len(sizes))
	captured := make([][]trace.Event, len(sizes))
	err := forEach(len(sizes), func(idx int) error {
		n := sizes[idx]
		if n < 1 {
			return fmt.Errorf("core: Breakdown size %d", n)
		}
		tp := scaleParams(p, n)
		if mode == ServerSharded {
			applyShardedParams(&tp, n)
		}
		tr := trace.New()
		tp.Tracer = tr
		jobs := n * JobsPerCN
		entries, err := workload.ParseSWF(strings.NewReader(scaleWorkloadSWF(n, jobs, tp.CoresPerNode, p.Seed)), tp.CoresPerNode)
		if err != nil {
			return fmt.Errorf("core: Breakdown n=%d: %w", n, err)
		}

		s := sim.Acquire()
		defer s.Release()
		c := cluster.New(s, tp)
		probeReady := newSignal(s, "breakdown-ready")
		goahead := newSignal(s, "breakdown-go")
		runErr := s.Run(func() {
			defer c.Close()
			c.Start()
			client := c.Client("front")

			// The probe job exercises the full static chain (two
			// statically allocated accelerators) and, once the trace
			// is submitted, the dynamic chain under load.
			probeID, err := client.Submit(pbs.JobSpec{
				Name: "breakdown-probe", Owner: "exp", Nodes: 1, PPN: 1, ACPN: 2,
				Walltime: time.Hour,
				Script: func(env *pbs.JobEnv) {
					ac, _, err := dac.Init(env)
					if err != nil {
						return
					}
					defer ac.Finalize()
					probeReady.fire()
					goahead.wait()
					clientID, _, err := ac.Get(1)
					if err == nil {
						ac.Free(clientID)
					}
				},
			})
			if err != nil {
				return
			}
			probeReady.wait()

			ids, err := workload.Replay(s, client, entries)
			if err != nil {
				return
			}
			goahead.fire()
			for _, id := range ids {
				client.Wait(id)
			}
			client.Wait(probeID)
		})
		if runErr != nil {
			return fmt.Errorf("core: Breakdown n=%d: %w", n, runErr)
		}

		events := tr.Events()
		captured[idx] = events
		profile := prof.Analyze(events)
		sum := prof.Summarize(profile)
		pt := BreakdownPoint{
			ComputeNodes: n,
			Accelerators: tp.Accelerators,
			Jobs:         len(profile.Jobs),
			Incomplete:   len(profile.Incomplete),
			Total:        sum.Total.Mean(),
			DynTotal:     sum.DynTotal.Mean(),
			Top:          sum.TopPath(3),
		}
		for _, name := range prof.StaticPhases {
			if sm := sum.Static[name]; sm != nil {
				pt.Static = append(pt.Static, prof.Phase{Name: name, Dur: sm.Mean()})
			}
		}
		for _, name := range prof.DynPhases {
			if sm := sum.Dyn[name]; sm != nil {
				pt.Dyn = append(pt.Dyn, prof.Phase{Name: name, Dur: sm.Mean()})
			}
		}
		out[idx] = pt
		return nil
	})
	if err != nil {
		return nil, err
	}
	if capture != nil {
		for idx, n := range sizes {
			capture(n, captured[idx])
		}
	}
	return out, nil
}

// phaseCell renders one phase's mean, "-" when the phase is absent.
func phaseCell(phases []prof.Phase, name string) string {
	for _, ph := range phases {
		if ph.Name == name {
			return metrics.Ms(ph.Dur)
		}
	}
	return "-"
}

// BreakdownTable renders the static-chain decomposition, one row per
// cluster size (the paper's "static allocation overhead" axis).
func BreakdownTable(points []BreakdownPoint) *metrics.Table {
	t := &metrics.Table{
		Title:   "Breakdown: static allocation phases vs cluster size (per-job means) [ms]",
		Headers: append(append([]string{"compute_nodes", "jobs"}, prof.StaticPhases...), "total"),
	}
	for _, pt := range points {
		row := []string{fmt.Sprint(pt.ComputeNodes), fmt.Sprint(pt.Jobs)}
		for _, name := range prof.StaticPhases {
			row = append(row, phaseCell(pt.Static, name))
		}
		row = append(row, metrics.Ms(pt.Total))
		t.AddRow(row...)
	}
	return t
}

// DynBreakdownTable renders the dynamic-request decomposition, one
// row per cluster size (the "dynamic request overhead" axis).
func DynBreakdownTable(points []BreakdownPoint) *metrics.Table {
	t := &metrics.Table{
		Title:   "Breakdown: dynamic request phases vs cluster size [ms]",
		Headers: append(append([]string{"compute_nodes", "accelerators"}, prof.DynPhases...), "total"),
	}
	for _, pt := range points {
		row := []string{fmt.Sprint(pt.ComputeNodes), fmt.Sprint(pt.Accelerators)}
		for _, name := range prof.DynPhases {
			row = append(row, phaseCell(pt.Dyn, name))
		}
		row = append(row, metrics.Ms(pt.DynTotal))
		t.AddRow(row...)
	}
	return t
}
