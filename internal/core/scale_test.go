package core

import (
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/workload"
)

// The scale experiment must stay usable at the target size: the
// scheduler cycle time may grow with the cluster, but sub-
// quadratically — a quadratic node-matching core (the old linear
// scans) would blow past this bound immediately.
func TestScaleCycleTimeSubQuadratic(t *testing.T) {
	pts, err := Scale(cluster.Default(), []int{8, 32})
	if err != nil {
		t.Fatalf("Scale: %v", err)
	}
	small, large := pts[0], pts[1]
	if small.CycleMean <= 0 || large.CycleMean <= 0 {
		t.Fatalf("cycle means not recorded: %+v %+v", small, large)
	}
	factor := float64(large.ComputeNodes) / float64(small.ComputeNodes)
	ratio := float64(large.CycleMean) / float64(small.CycleMean)
	if quad := factor * factor; ratio >= quad {
		t.Fatalf("cycle time grew %.1fx over a %gx cluster growth (quadratic bound %gx)",
			ratio, factor, quad)
	}
	if large.DynLatency <= 0 {
		t.Fatalf("dynamic probe produced no latency: %+v", large)
	}
	if large.Jobs != large.ComputeNodes*JobsPerCN {
		t.Fatalf("expected %d jobs, replayed %d", large.ComputeNodes*JobsPerCN, large.Jobs)
	}
}

func TestScaleTableRenders(t *testing.T) {
	pts := []ScalePoint{{
		ComputeNodes: 8, Accelerators: 64, Jobs: 64,
		CycleMean: 11 * time.Millisecond, CycleMax: 14 * time.Millisecond,
		DynLatency: 190 * time.Millisecond, Makespan: 67 * time.Second,
	}}
	var b strings.Builder
	if err := ScaleTable(pts).Render(&b); err != nil {
		t.Fatalf("render: %v", err)
	}
	for _, want := range []string{"compute_nodes", "cycle_mean_ms", "dyn_latency_ms", "64"} {
		if !strings.Contains(b.String(), want) {
			t.Fatalf("table missing %q:\n%s", want, b.String())
		}
	}
}

// The synthetic scale workload must round-trip through the SWF
// importer exactly once per job, deterministically.
func TestScaleWorkloadSWFDeterministic(t *testing.T) {
	a := scaleWorkloadSWF(16, 128, 8, 0)
	b := scaleWorkloadSWF(16, 128, 8, 0)
	if a != b {
		t.Fatal("scale workload not deterministic")
	}
	entries, err := workload.ParseSWF(strings.NewReader(a), 8)
	if err != nil {
		t.Fatalf("ParseSWF: %v", err)
	}
	if len(entries) != 128 {
		t.Fatalf("got %d entries, want 128", len(entries))
	}
	for _, e := range entries {
		if e.Nodes < 1 || e.Nodes > 2 || e.Runtime <= 0 {
			t.Fatalf("implausible entry: %+v", e)
		}
	}
}
