package core

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/cluster"
)

func serveSmoke(t *testing.T, mode ServerMode) []ServePoint {
	t.Helper()
	pts, err := Serve(cluster.Default(), []int{8, 16}, mode, 0, 5*time.Second)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	return pts
}

func TestServeSmoke(t *testing.T) {
	pts := serveSmoke(t, ServerFaithful)
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, pt := range pts {
		if pt.Submitted == 0 || pt.Completed != pt.Submitted {
			t.Fatalf("n=%d: submitted %d completed %d", pt.ComputeNodes, pt.Submitted, pt.Completed)
		}
		if pt.Dispatches == 0 || pt.Makespan <= 0 {
			t.Fatalf("n=%d: empty kernel ledger", pt.ComputeNodes)
		}
		if len(pt.Compliance) == 0 {
			t.Fatalf("n=%d: no compliance rows", pt.ComputeNodes)
		}
	}
	// Larger cluster, higher default rate, more jobs over the same
	// horizon.
	if pts[1].Submitted <= pts[0].Submitted {
		t.Fatalf("rate scaling broken: %d jobs at n=8, %d at n=16", pts[0].Submitted, pts[1].Submitted)
	}
	var table strings.Builder
	if err := ServeTable(pts).Render(&table); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(table.String(), "faithful") {
		t.Fatalf("table missing mode column:\n%s", table.String())
	}
	var comp strings.Builder
	if err := ServeComplianceTable(pts).Render(&comp); err != nil {
		t.Fatal(err)
	}
	if comp.Len() == 0 {
		t.Fatal("empty compliance table")
	}
}

func TestServeShardedSmoke(t *testing.T) {
	pts := serveSmoke(t, ServerSharded)
	for _, pt := range pts {
		if pt.Completed != pt.Submitted {
			t.Fatalf("n=%d: %d/%d", pt.ComputeNodes, pt.Completed, pt.Submitted)
		}
	}
}

// TestServeMillionJobs is the acceptance soak behind the serve
// figure: one million open-loop jobs across two resident instances
// (128 and 256 compute nodes at their default rates), run once
// serially and once on four workers, with the flight recorder and
// invariant engine attached. The reports must be byte-identical
// across parallelism levels and the run must finish with zero audit
// breaches. It costs minutes of wall time, so it only runs when
// SERVE_MILLION=1 is set (the rest of the suite pins the same
// invariants at smoke scale).
func TestServeMillionJobs(t *testing.T) {
	if os.Getenv("SERVE_MILLION") == "" {
		t.Skip("set SERVE_MILLION=1 to run the million-job acceptance soak")
	}
	old := Parallelism()
	defer SetParallelism(old)
	// Default rates are n/4 jobs per virtual second: 32 + 64 = 96
	// jobs/s across the two instances, so this horizon admits ~1.04
	// million jobs.
	const horizon = 10850 * time.Second
	run := func(workers int) (string, int) {
		SetParallelism(workers)
		p := cluster.Default()
		rec := audit.New(1 << 16)
		p.Audit = rec
		pts, err := Serve(p, []int{128, 256}, ServerFaithful, 0, horizon)
		if err != nil {
			t.Fatalf("Serve(workers=%d): %v", workers, err)
		}
		total := 0
		for _, pt := range pts {
			if pt.Completed != pt.Submitted {
				t.Fatalf("workers=%d n=%d: drained %d of %d", workers, pt.ComputeNodes, pt.Completed, pt.Submitted)
			}
			total += pt.Completed
		}
		if br := rec.Breaches(); br != 0 {
			t.Fatalf("workers=%d: %d audit breaches", workers, br)
		}
		b, err := json.Marshal(pts)
		if err != nil {
			t.Fatal(err)
		}
		return string(b), total
	}
	serial, n1 := run(1)
	parallel, n4 := run(4)
	if n1 < 1_000_000 {
		t.Fatalf("soak admitted only %d jobs, want >= 1000000", n1)
	}
	if serial != parallel || n1 != n4 {
		t.Fatalf("million-job reports differ between -parallel levels (%d vs %d jobs)", n1, n4)
	}
	t.Logf("served %d jobs, byte-identical at 1 and 4 workers, zero breaches", n1)
}

// The serve figure must be byte-identical at every parallelism level:
// each point is an isolated simulation, so fan-out order cannot leak
// into the reports.
func TestServeParallelInvariance(t *testing.T) {
	old := Parallelism()
	defer SetParallelism(old)
	run := func() string {
		pts, err := Serve(cluster.Default(), []int{8, 12, 16}, ServerFaithful, 0, 4*time.Second)
		if err != nil {
			t.Fatalf("Serve: %v", err)
		}
		b, err := json.Marshal(pts)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	SetParallelism(1)
	serial := run()
	SetParallelism(4)
	parallel := run()
	if serial != parallel {
		t.Fatal("serve reports differ between -parallel levels")
	}
}
