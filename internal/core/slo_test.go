package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/telemetry"
)

// sloTestSizes keeps the unit tests fast: one small ladder point.
// The CI smoke job runs the full 64→256 ladder through dacsim.
var sloTestSizes = []int{32}

func TestSLOPointShape(t *testing.T) {
	pts, err := SLO(cluster.Default(), sloTestSizes)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 {
		t.Fatalf("got %d points, want 1", len(pts))
	}
	pt := pts[0]
	if pt.ComputeNodes != 32 || pt.Accelerators != 32*ACsPerCN || pt.Jobs != 32*JobsPerCN {
		t.Fatalf("point shape: %+v", pt)
	}
	if pt.Probers != sloProbers(32) {
		t.Fatalf("probers = %d, want %d", pt.Probers, sloProbers(32))
	}
	if want := pt.Probers * sloReqsPerProber; pt.DynGranted != want {
		t.Fatalf("dyn granted = %d, want %d (all paced requests served)", pt.DynGranted, want)
	}
	if len(pt.Windows) < 2 {
		t.Fatalf("only %d scrape windows", len(pt.Windows))
	}
	if pt.Makespan <= 0 {
		t.Fatal("makespan not recorded")
	}
	// The scrape series covers the run: the last window ends at the
	// makespan (Stop takes a final partial window).
	last := pt.Windows[len(pt.Windows)-1]
	if last.End != pt.Makespan {
		t.Fatalf("last window ends at %v, makespan %v", last.End, pt.Makespan)
	}
	if len(pt.Compliance) != len(SLOObjectives()) {
		t.Fatalf("%d compliance rows, want %d", len(pt.Compliance), len(SLOObjectives()))
	}
	if pt.Prom == "" || !strings.Contains(pt.Prom, "pbs_dyn_latency") {
		t.Fatalf("prometheus exposition missing dyn-latency summary:\n%.400s", pt.Prom)
	}
}

// The deliberately tight scheduler-occupancy objective must breach —
// it is the figure's demonstration of the first-breach timestamp —
// while the calibrated latency objectives hold.
func TestSLOObjectivesCalibration(t *testing.T) {
	pts, err := SLO(cluster.Default(), sloTestSizes)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]telemetry.Compliance{}
	for _, c := range pts[0].Compliance {
		byName[c.Objective.Name] = c
	}
	for _, name := range []string{"dyn-p50", "dyn-p99", "cycle-mean"} {
		c, ok := byName[name]
		if !ok {
			t.Fatalf("objective %q missing", name)
		}
		if !c.Compliant {
			t.Errorf("%s: breached (worst %.4f, first %v), want compliant", name, c.Worst, c.First)
		}
	}
	occ, ok := byName["sched-occupancy"]
	if !ok {
		t.Fatal("sched-occupancy objective missing")
	}
	if occ.Compliant {
		t.Fatalf("sched-occupancy: compliant (worst %.4f), want the deliberate breach", occ.Worst)
	}
	if occ.First < 0 {
		t.Fatal("sched-occupancy: no first-breach timestamp")
	}
	if occ.First%SLOScrapeInterval != 0 {
		t.Errorf("first breach at %v, want a window edge (interval %v)", occ.First, SLOScrapeInterval)
	}
}

func TestSLOTablesRender(t *testing.T) {
	pts, err := SLO(cluster.Default(), sloTestSizes)
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := SLOTable(pts).Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "slo_met") {
		t.Fatalf("overview table:\n%s", b.String())
	}
	b.Reset()
	if err := SLOComplianceTable(pts).Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"sched-occupancy", "first_breach_ms", "maui.occupancy"} {
		if !strings.Contains(out, want) {
			t.Fatalf("compliance table missing %q:\n%s", want, out)
		}
	}
}

func TestSLORejectsBadSize(t *testing.T) {
	if _, err := SLO(cluster.Default(), []int{0}); err == nil {
		t.Fatal("want error for size 0")
	}
}

// The slo figure — tables, the JSONL scrape series, and the
// Prometheus page — must be byte-identical at every parallelism
// level: each size runs on a private simulation with a private
// registry, and results reduce in index order.
func TestSLOIdenticalAcrossParallelism(t *testing.T) {
	old := Parallelism()
	defer SetParallelism(old)
	p := cluster.Default()
	sizes := []int{16, 32}

	render := func(pts []SLOPoint) string {
		var b bytes.Buffer
		if err := SLOTable(pts).Render(&b); err != nil {
			t.Fatal(err)
		}
		if err := SLOComplianceTable(pts).Render(&b); err != nil {
			t.Fatal(err)
		}
		for _, pt := range pts {
			if err := telemetry.WriteJSONL(&b, pt.Windows); err != nil {
				t.Fatal(err)
			}
			b.WriteString(pt.Prom)
		}
		return b.String()
	}

	SetParallelism(1)
	serial, err := SLO(p, sizes)
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	SetParallelism(4)
	par, err := SLO(p, sizes)
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}

	a, b := render(serial), render(par)
	if a != b {
		t.Fatalf("slo output differs across parallelism:\n--- serial ---\n%.2000s\n--- parallel ---\n%.2000s", a, b)
	}
}

func TestSLOProbersFloor(t *testing.T) {
	for n, want := range map[int]int{8: 2, 32: 2, 64: 2, 128: 4, 256: 8} {
		if got := sloProbers(n); got != want {
			t.Errorf("sloProbers(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestSLOScrapeWindowsAligned(t *testing.T) {
	pts, err := SLO(cluster.Default(), sloTestSizes)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range pts[0].Windows {
		if w.Index != i {
			t.Fatalf("window %d has index %d", i, w.Index)
		}
		if i < len(pts[0].Windows)-1 && w.End-w.Start != SLOScrapeInterval {
			t.Fatalf("window %d spans %v, want %v", i, w.End-w.Start, SLOScrapeInterval)
		}
		if i > 0 && w.Start != pts[0].Windows[i-1].End {
			t.Fatalf("window %d starts at %v, previous ended at %v", i, w.Start, pts[0].Windows[i-1].End)
		}
	}
}
