package core

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/dac"
	"repro/internal/metrics"
	"repro/internal/pbs"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// The slo experiment is the live-telemetry view of the scale ladder:
// it replays the synthetic SWF workload on clusters of growing size
// while an open-loop stream of prober jobs issues paced dynamic
// requests, scrapes every layer's instruments on a fixed virtual-time
// interval, and evaluates a set of service-level objectives against
// the windowed series. Where the breakdown figure explains *why* a
// latency is what it is, the slo figure watches it *live*: per-window
// p50/p99/p999 dynamic-request latency, scheduler cycle occupancy,
// queue depth, and fabric load, with per-objective compliance and the
// virtual timestamp of the first breach.

// SLOPoint is one row of the slo figure: a cluster size, its scrape
// series, and the compliance evaluation.
type SLOPoint struct {
	ComputeNodes int
	Accelerators int
	Jobs         int // trace jobs replayed
	Probers      int // dynamic-request prober jobs
	DynGranted   int // dynamic requests granted across the run
	Makespan     time.Duration
	Windows      []telemetry.Window     // the scrape series (one per SLOScrapeInterval)
	Compliance   []telemetry.Compliance // SLOObjectives() evaluated over Windows
	Prom         string                 // Prometheus text exposition of the final cumulative state
}

// SLOSizes is the default compute-node axis of the slo figure: the
// top half of the scale ladder, where the scheduler is busy enough
// for occupancy and latency windows to carry signal.
var SLOSizes = []int{64, 128, 256}

// Pacing of the open-loop dynamic-request stream: every prober issues
// sloReqsPerProber requests, one each sloProbePace of virtual time,
// so the stream spans the SWF submission window and its drain.
const (
	sloProbePace     = 3 * time.Second
	sloProbeHold     = 500 * time.Millisecond // accelerator hold per request, so dac.util_dynamic carries signal
	sloReqsPerProber = 24

	// SLOScrapeInterval is the virtual-time scrape period.
	SLOScrapeInterval = 5 * time.Second
)

// sloProbers sets how many prober jobs run at a cluster size: enough
// that every scrape window sees dynamic-request samples, few enough
// that the probers do not become the workload.
func sloProbers(n int) int {
	if p := n / 32; p > 2 {
		return p
	}
	return 2
}

// SLOObjectives is the figure's service-level objective set. The
// latency and cycle bounds are calibrated against the ladder's
// observed baselines with ~3x headroom, so they hold at every size; the
// scheduler-occupancy bound is deliberately tight — a busy scheduler
// breaches it in the first windows, exercising the first-breach
// timestamp that a real operator would alarm on.
func SLOObjectives() []telemetry.Objective {
	return []telemetry.Objective{
		{Name: "dyn-p50", Instrument: "pbs.dyn_latency", Stat: telemetry.StatP50, Max: 0.150},
		{Name: "dyn-p99", Instrument: "pbs.dyn_latency", Stat: telemetry.StatP99, Max: 0.250},
		{Name: "cycle-mean", Instrument: "maui.cycle", Stat: telemetry.StatMean, Max: 0.050},
		{Name: "sched-occupancy", Instrument: "maui.occupancy", Stat: telemetry.StatDelta, Max: 0.02},
	}
}

// SLO runs the live-telemetry experiment for the given compute-node
// counts (SLOSizes when nil). Each point is an independent simulation
// with a private registry and scraper, so the points fan out over the
// trial worker pool and every table, JSONL series, and Prometheus
// page is byte-identical at any parallelism level.
func SLO(p cluster.Params, sizes []int) ([]SLOPoint, error) {
	if len(sizes) == 0 {
		sizes = SLOSizes
	}
	objectives := SLOObjectives()
	out := make([]SLOPoint, len(sizes))
	err := forEach(len(sizes), func(idx int) error {
		n := sizes[idx]
		if n < 1 {
			return fmt.Errorf("core: SLO size %d", n)
		}
		tp := scaleParams(p, n)
		reg := telemetry.New()
		tp.Telemetry = reg
		jobs := n * JobsPerCN
		entries, err := workload.ParseSWF(strings.NewReader(scaleWorkloadSWF(n, jobs, tp.CoresPerNode, p.Seed)), tp.CoresPerNode)
		if err != nil {
			return fmt.Errorf("core: SLO n=%d: %w", n, err)
		}

		s := sim.Acquire()
		defer s.Release()
		c := cluster.New(s, tp)
		scr := telemetry.NewScraper(reg, s, SLOScrapeInterval)
		probers := sloProbers(n)
		var pt SLOPoint
		ready := make([]*signal, probers)
		for i := range ready {
			ready[i] = newSignal(s, fmt.Sprintf("slo-ready-%d", i))
		}
		goahead := newSignal(s, "slo-go")
		runErr := s.Run(func() {
			defer c.Close()
			scr.Start()
			c.Start()
			client := c.Client("front")

			// The probers start on the idle cluster and hold one core
			// each; once the trace is fully submitted they issue an
			// open-loop stream of paced dynamic requests into the
			// loaded scheduler, staggered so their phases differ.
			proberIDs := make([]string, 0, probers)
			for i := 0; i < probers; i++ {
				i := i
				id, err := client.Submit(pbs.JobSpec{
					Name: fmt.Sprintf("slo-probe-%d", i), Owner: "exp",
					Nodes: 1, PPN: 1, ACPN: 0, Walltime: time.Hour,
					Script: func(env *pbs.JobEnv) {
						ac, _, err := dac.Init(env)
						if err != nil {
							return
						}
						defer ac.Finalize()
						ready[i].fire()
						goahead.wait()
						s.Sleep(sloProbePace * time.Duration(i) / time.Duration(probers))
						for r := 0; r < sloReqsPerProber; r++ {
							clientID, _, err := ac.Get(1)
							if err == nil {
								s.Sleep(sloProbeHold)
								ac.Free(clientID)
							}
							s.Sleep(sloProbePace)
						}
					},
				})
				if err != nil {
					return
				}
				proberIDs = append(proberIDs, id)
			}
			for _, sg := range ready {
				sg.wait()
			}

			ids, err := workload.Replay(s, client, entries)
			if err != nil {
				return
			}
			goahead.fire()
			for _, id := range ids {
				client.Wait(id)
			}
			for _, id := range proberIDs {
				client.Wait(id)
			}
			scr.Stop()
			pt.Makespan = s.Now()
			var prom strings.Builder
			if err := telemetry.WriteProm(&prom, reg, s.Now()); err == nil {
				pt.Prom = prom.String()
			}
		})
		if runErr != nil {
			return fmt.Errorf("core: SLO n=%d: %w", n, runErr)
		}
		pt.ComputeNodes = n
		pt.Accelerators = tp.Accelerators
		pt.Jobs = len(entries)
		pt.Probers = probers
		pt.DynGranted = int(reg.Counter("pbs.dyn_granted").Value())
		pt.Windows = scr.Windows()
		pt.Compliance = telemetry.Evaluate(pt.Windows, objectives)
		out[idx] = pt
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// sloCompliant counts the objectives a point meets.
func sloCompliant(pt SLOPoint) int {
	met := 0
	for _, c := range pt.Compliance {
		if c.Compliant {
			met++
		}
	}
	return met
}

// SLOTable renders the per-size overview of the slo figure.
func SLOTable(points []SLOPoint) *metrics.Table {
	t := &metrics.Table{
		Title: "SLO: live telemetry over the scale ladder (open-loop dynamic-request stream)",
		Headers: []string{"compute_nodes", "accelerators", "jobs", "probers",
			"dyn_granted", "windows", "makespan_ms", "slo_met"},
	}
	for _, pt := range points {
		t.AddRow(
			fmt.Sprint(pt.ComputeNodes), fmt.Sprint(pt.Accelerators), fmt.Sprint(pt.Jobs),
			fmt.Sprint(pt.Probers), fmt.Sprint(pt.DynGranted), fmt.Sprint(len(pt.Windows)),
			metrics.Ms(pt.Makespan),
			fmt.Sprintf("%d/%d", sloCompliant(pt), len(pt.Compliance)),
		)
	}
	return t
}

// sloValue renders an observed statistic in the objective's native
// unit: milliseconds for time-valued stats, plain for ratios/counts.
func sloValue(stat telemetry.Stat, v float64) string {
	switch stat {
	case telemetry.StatP50, telemetry.StatP99, telemetry.StatP999,
		telemetry.StatMean, telemetry.StatMax:
		return fmt.Sprintf("%.3fms", v*1e3)
	}
	return fmt.Sprintf("%.4f", v)
}

// SLOComplianceTable renders the per-objective evaluation: one row per
// (cluster size, objective) with the bound, the worst observed value,
// and the virtual time of the first breach.
func SLOComplianceTable(points []SLOPoint) *metrics.Table {
	t := &metrics.Table{
		Title: "SLO compliance (worst observed value and virtual first-breach time)",
		Headers: []string{"compute_nodes", "objective", "instrument", "stat",
			"target", "windows", "breaches", "worst", "first_breach_ms", "compliant"},
	}
	for _, pt := range points {
		for _, c := range pt.Compliance {
			first := "-"
			if c.First >= 0 {
				first = metrics.Ms(c.First)
			}
			t.AddRow(
				fmt.Sprint(pt.ComputeNodes), c.Objective.Name, c.Objective.Instrument,
				string(c.Objective.Stat), c.Objective.Target(),
				fmt.Sprint(c.Windows), fmt.Sprint(c.Breaches),
				sloValue(c.Objective.Stat, c.Worst), first,
				fmt.Sprint(c.Compliant),
			)
		}
	}
	return t
}
