package repro_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"repro"
)

// TestTraceCoversAllComponents drives a dynamic-allocation job with
// tracing on and checks the exported Chrome trace: it must be valid
// JSON and carry spans from all four instrumented layers (pbs, maui,
// netsim, dac), and every accounting record must have a matching
// trace instant at the same virtual time.
func TestTraceCoversAllComponents(t *testing.T) {
	tracer := repro.NewTracer()
	params := repro.DefaultParams()
	params.Tracer = tracer

	var mu sync.Mutex
	var acct []repro.AccountingRecord
	err := repro.RunCluster(params, func(c *repro.Cluster, client *repro.Client) {
		id, err := client.Submit(repro.JobSpec{
			Name: "traced", Owner: "t", Nodes: 1, PPN: 1, ACPN: 1, Walltime: time.Minute,
			Script: func(env *repro.JobEnv) {
				ac, hs, err := repro.Init(env)
				if err != nil {
					t.Errorf("Init: %v", err)
					return
				}
				defer ac.Finalize()
				set, dyn, err := ac.Get(1)
				if err != nil {
					t.Errorf("Get: %v", err)
					return
				}
				for _, h := range append(hs, dyn...) {
					p, err := ac.MemAlloc(h, 1024)
					if err != nil {
						t.Errorf("MemAlloc: %v", err)
						return
					}
					if err := ac.MemCpyToDevice(h, p, 0, []byte{1, 2, 3}); err != nil {
						t.Errorf("copy: %v", err)
						return
					}
				}
				if err := ac.Free(set); err != nil {
					t.Errorf("Free: %v", err)
				}
			},
		})
		if err != nil {
			t.Errorf("Submit: %v", err)
			return
		}
		if info, err := client.Wait(id); err != nil || info.State != repro.JobCompleted {
			t.Errorf("Wait: %v %v", info.State, err)
		}
		mu.Lock()
		acct = c.Server.AccountingLog()
		mu.Unlock()
	})
	if err != nil {
		t.Fatalf("RunCluster: %v", err)
	}

	var buf bytes.Buffer
	if err := tracer.WriteChrome(&buf); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	components := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "M" {
			continue
		}
		track := ev.Args["name"]
		comp, _, _ := strings.Cut(track, "/")
		comp, _, _ = strings.Cut(comp, "@")
		components[comp] = true
	}
	for _, want := range []string{"pbs", "maui", "netsim", "dac"} {
		if !components[want] {
			t.Errorf("trace has no %q track (components: %v)", want, components)
		}
	}

	// The submit → dynget → alloc → jobdone server spans must all be
	// present for the traced job.
	spanNames := map[string]bool{}
	for _, ev := range tracer.Events() {
		if ev.Track == "pbs/server" && ev.Kind == repro.TraceSpan {
			spanNames[ev.Name] = true
		}
	}
	for _, want := range []string{"submit", "dynget", "alloc", "jobdone", "dyn.request"} {
		if !spanNames[want] {
			t.Errorf("pbs/server track missing %q span (have %v)", want, spanNames)
		}
	}

	// Every accounting record re-publishes as an "acct.<type>" instant
	// at the same virtual timestamp with the same job id.
	mu.Lock()
	defer mu.Unlock()
	if len(acct) == 0 {
		t.Fatal("no accounting records")
	}
	type key struct {
		name string
		at   time.Duration
		job  string
	}
	instants := map[key]int{}
	for _, ev := range tracer.Events() {
		if ev.Kind != repro.TraceInstant || !strings.HasPrefix(ev.Name, "acct.") {
			continue
		}
		var job string
		for _, kv := range ev.Args {
			if kv.Key == "job" {
				job = kv.Value
			}
		}
		instants[key{ev.Name, ev.Start, job}]++
	}
	for _, rec := range acct {
		k := key{"acct." + string(rec.Type), rec.At, rec.JobID}
		if instants[k] == 0 {
			t.Errorf("accounting record %s has no matching trace instant", rec)
		} else {
			instants[k]--
		}
	}
}
