// Package repro is the public facade of this reproduction of
// "A Dynamic Resource Management System for Network-Attached
// Accelerator Clusters" (Prabhakaran, Iqbal, Rinke, Wolf — ICPP
// 2013).
//
// It re-exports the library surface a downstream user needs:
//
//   - the simulated DAC testbed (cluster assembly and parameters),
//   - the extended TORQUE/Maui batch system (job submission, the
//     pbs_dynget/pbs_dynfree dynamic allocation calls),
//   - the DAC resource-management and computation libraries
//     (AC_Init, AC_Get, AC_Free, AC_Finalize, memory copies, kernel
//     launches on simulated network-attached GPUs),
//   - and the experiment drivers regenerating every figure of the
//     paper's evaluation.
//
// See examples/quickstart for a complete program.
package repro

import (
	"repro/internal/audit"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dac"
	"repro/internal/gpusim"
	"repro/internal/maui"
	"repro/internal/netsim"
	"repro/internal/pbs"
	"repro/internal/prof"
	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Cluster assembly.
type (
	// Params configures the simulated testbed's shape and cost model.
	Params = cluster.Params
	// Cluster is a wired testbed (fabric, server, moms, scheduler,
	// devices).
	Cluster = cluster.Cluster
)

// DefaultParams returns the calibrated testbed configuration
// matching the paper's evaluation platform.
func DefaultParams() Params { return cluster.Default() }

// NewCluster builds a testbed on a fresh simulation.
func NewCluster(s *sim.Simulation, p Params) *Cluster { return cluster.New(s, p) }

// RunCluster builds a simulation and cluster, runs fn with an IFL
// client, and tears everything down.
func RunCluster(p Params, fn func(c *Cluster, client *Client)) error {
	return cluster.Run(p, fn)
}

// CNName and ACName name the testbed's hosts.
var (
	CNName = cluster.CNName
	ACName = cluster.ACName
)

// Simulation kernel.
type (
	// Simulation is the virtual-time execution environment all
	// cluster components run in.
	Simulation = sim.Simulation
)

// NewSimulation creates an empty simulation at virtual time zero.
func NewSimulation() *Simulation { return sim.New() }

// Observability (see internal/trace).
type (
	// Tracer records virtual-time spans, instants, and metrics from
	// every instrumented layer. Install one via Params.Tracer (or
	// Simulation.SetTracer); a nil tracer disables tracing.
	Tracer = trace.Tracer
	// TraceEvent is one recorded span or instant.
	TraceEvent = trace.Event
	// AccountingRecord is one line of the server's TORQUE-style
	// accounting log (Server.AccountingLog); with tracing enabled each
	// record is also published as an "acct.<type>" trace instant.
	AccountingRecord = pbs.AccountingRecord
)

// Trace event kinds.
const (
	TraceSpan    = trace.KindSpan
	TraceInstant = trace.KindInstant
)

// NewTracer creates an enabled tracer. Dump it with WriteChrome
// (Perfetto / chrome://tracing) or WriteSummary (aligned tables).
func NewTracer() *Tracer { return trace.New() }

// Capture files: a JSONL stream of trace events, the interchange
// format between dacsim (-fig breakdown -capture) and dacprof.
var (
	WriteCapture = trace.WriteCapture
	ReadCapture  = trace.ReadCapture
)

// Live telemetry (see internal/telemetry): virtual-time-native
// instruments, periodic scrapes, and SLO evaluation.
type (
	// TelemetryRegistry is a set of named typed instruments (counters,
	// gauges, streaming histograms, occupancy trackers). Install one
	// via Params.Telemetry; a nil registry disables all instruments at
	// zero cost.
	TelemetryRegistry = telemetry.Registry
	// TelemetryScraper samples a registry on a fixed virtual-time
	// interval into a windowed time-series.
	TelemetryScraper = telemetry.Scraper
	// TelemetryWindow is one scrape: every instrument's row over one
	// virtual-time window.
	TelemetryWindow = telemetry.Window
	// TelemetryRow is one instrument's state in one window.
	TelemetryRow = telemetry.Row
	// StreamingHistogram is the mergeable fixed-bucket log-scale
	// latency histogram behind every histogram instrument.
	StreamingHistogram = telemetry.Histogram
	// SLOObjective bounds one per-window statistic of one instrument.
	SLOObjective = telemetry.Objective
	// SLOCompliance is the evaluation of one objective over a series.
	SLOCompliance = telemetry.Compliance
)

// Telemetry entry points.
var (
	// NewTelemetry creates an empty instrument registry.
	NewTelemetry = telemetry.New
	// NewHistogram creates a standalone streaming histogram.
	NewHistogram = telemetry.NewHistogram
	// NewScraper builds a periodic scraper over a registry (the clock
	// is typically the *Simulation the cluster runs in).
	NewScraper = telemetry.NewScraper
	// EvaluateSLOs checks objectives against a scrape series.
	EvaluateSLOs = telemetry.Evaluate
	// WriteScrapeJSONL / ReadScrapeJSONL are the scrape-series
	// interchange format between dacsim (-fig slo -scrape-out) and
	// dacstat; WritePromText is the Prometheus text exposition.
	WriteScrapeJSONL = telemetry.WriteJSONL
	ReadScrapeJSONL  = telemetry.ReadJSONL
	WritePromText    = telemetry.WriteProm
)

// Profiling (see internal/prof): the causal critical-path profiler
// with exact per-phase overhead attribution.
type (
	// Profile is the exact per-job attribution of one capture.
	Profile = prof.Profile
	// JobProfile decomposes one job's end-to-end latency into causal
	// phases that sum exactly (integer virtual time) to the total.
	JobProfile = prof.JobProfile
	// DynProfile decomposes one dynamic request the same way.
	DynProfile = prof.DynProfile
	// ProfileSummary aggregates per-phase distributions and the
	// critical-path breakdown by owner.
	ProfileSummary = prof.Summary
)

// Profiler entry points.
var (
	// AnalyzeProfile reconstructs every job's causal chain from a
	// span stream (Tracer.Events or ReadCapture).
	AnalyzeProfile = prof.Analyze
	// SummarizeProfile aggregates a profile; summaries merge.
	SummarizeProfile = prof.Summarize
	// WriteFolded renders a span stream as flamegraph folded stacks.
	WriteFolded = prof.WriteFolded
	// ProfileDiff and TopDrifter name the phase responsible for drift
	// between two captures.
	ProfileDiff = prof.Diff
	TopDrifter  = prof.TopDrifter
)

// Fabric is the simulated cluster interconnect (exposed through
// Cluster.Net for failure injection via SetDown / SetHostDown).
type Fabric = netsim.Network

// NewIFLClient creates an Interface Library client with its own
// fabric endpoint — what a job script uses for pbs_dynget /
// pbs_dynfree calls outside the DAC library, including the malleable
// DynGetNodes extension.
func NewIFLClient(net *Fabric, name, serverEP string) *Client {
	return pbs.NewClient(net, name, serverEP)
}

// Server is the pbs_server daemon, exposed for head-node failover
// demonstrations (Checkpoint / Stop / Restore) and accounting
// queries (Usage, ClusterUtilization, Energy).
type Server = pbs.Server

// NewServer creates a replacement pbs_server over the same fabric
// (it takes over the well-known endpoint).
func NewServer(net *Fabric, params pbs.ServerParams) *Server {
	return pbs.NewServer(net, params)
}

// Batch system (extended TORQUE/Maui).
type (
	// JobSpec is a qsub request: nodes, cores, network-attached
	// accelerators per node (acpn), walltime, and the job script.
	JobSpec = pbs.JobSpec
	// JobEnv is the execution environment handed to each compute
	// node task.
	JobEnv = pbs.JobEnv
	// JobInfo is the qstat view of a job, including the dynamic
	// request records used by the experiments.
	JobInfo = pbs.JobInfo
	// Client is the Interface Library (IFL) client: Submit, Stat,
	// Wait, Delete, DynGet, DynFree.
	Client = pbs.Client
	// SchedulerParams configures the Maui-like scheduler policy.
	SchedulerParams = maui.Params
	// DynRecord decomposes one dynamic allocation at the server.
	DynRecord = pbs.DynRecord
	// JobState is the qstat lifecycle state.
	JobState = pbs.JobState
	// NodeUsage is the server's accounting view of one node.
	NodeUsage = pbs.NodeUsage
)

// Job lifecycle states.
const (
	JobQueued    = pbs.JobQueued
	JobRunning   = pbs.JobRunning
	JobCompleted = pbs.JobCompleted
	JobDeleted   = pbs.JobDeleted
	JobFailed    = pbs.JobFailed
)

// DAC resource management and computation library.
type (
	// AC is the per-application handle of the resource-management
	// library.
	AC = dac.AC
	// Accel is the unique handle of one allocated accelerator.
	Accel = dac.Accel
	// ACStats carries the library's timing decomposition (AC_Init
	// waiting/connect, AC_Get batch/MPI).
	ACStats = dac.Stats
	// DevicePtr is a device memory handle.
	DevicePtr = gpusim.Ptr
	// KernelCtx gives registered kernels access to device memory.
	KernelCtx = gpusim.KernelCtx
	// KernelCost reports the work a kernel performed (roofline
	// timing).
	KernelCost = gpusim.Cost
)

// Init is AC_Init: connect to the statically allocated accelerators.
func Init(env *JobEnv) (*AC, []*Accel, error) { return dac.Init(env) }

// RegisterKernel installs a named device kernel (the analogue of a
// compiled CUDA module available on every accelerator).
var RegisterKernel = gpusim.RegisterKernel

// EncodeFloat64s and DecodeFloat64s marshal numeric buffers for
// device copies.
var (
	EncodeFloat64s = gpusim.EncodeFloat64s
	DecodeFloat64s = gpusim.DecodeFloat64s
)

// Workload generation.
type (
	// WorkloadClass describes one job class of a synthetic mix.
	WorkloadClass = workload.Class
	// WorkloadGenerator draws jobs with exponential interarrivals.
	WorkloadGenerator = workload.Generator
	// Phase is one phase of an evolving DAC application.
	Phase = workload.Phase
	// TraceEntry is one job of a recorded workload trace.
	TraceEntry = workload.TraceEntry
)

// Workload helpers.
var (
	NewWorkloadGenerator   = workload.NewGenerator
	DefaultWorkloadClasses = workload.DefaultClasses
	PhasedApp              = workload.PhasedApp
	SaveTrace              = workload.Save
	LoadTrace              = workload.Load
	ReplayTrace            = workload.Replay
	RecordTrace            = workload.Record
	// ParseSWF imports a Standard Workload Format trace (Parallel
	// Workloads Archive); ScaleTrace compresses its time axis.
	ParseSWF   = workload.ParseSWF
	ScaleTrace = workload.ScaleTrace
)

// Open-loop submission sources (see internal/workload): deterministic
// seeded arrival processes feeding the online service mode.
type (
	// SubmissionSource yields timestamped job submissions for the
	// online service; Arrivals and trace replays both implement it.
	SubmissionSource = workload.Source
	// Arrivals is a deterministic open-loop arrival process (Poisson,
	// uniform, or bursty) with rate and job-shape streams decoupled so
	// changing the rate never reshuffles job sizes.
	Arrivals = workload.Arrivals
	// ArrivalConfig tunes an arrival process (process, rate, seed,
	// classes, horizon, burst shape).
	ArrivalConfig = workload.ArrivalConfig
	// ArrivalProcess names an interarrival distribution.
	ArrivalProcess = workload.ArrivalProcess
)

// Arrival processes and source constructors.
const (
	ArrivalPoisson = workload.ArrivalPoisson
	ArrivalUniform = workload.ArrivalUniform
	ArrivalBurst   = workload.ArrivalBurst
)

var (
	NewArrivals         = workload.NewArrivals
	NewTraceSource      = workload.NewTraceSource
	ParseArrivalProcess = workload.ParseArrivalProcess
	ServeClasses        = workload.ServeClasses
)

// Online service mode (see internal/service): a resident cluster
// instance absorbing an open-loop submission stream at steady-state
// memory, with qstat/qsub-style queries and SLO reporting.
type (
	// Service is a live cluster engine serving a submission source.
	Service = service.Instance
	// ServiceConfig wires a source, admission tick, horizon, retention
	// window, and telemetry cadence to a resident instance.
	ServiceConfig = service.Config
	// ServiceReport is the end-of-run summary (throughput ledger,
	// scrape windows, SLO compliance, pool statistics).
	ServiceReport = service.Report
	// ServiceStats is a live snapshot of the instance's counters.
	ServiceStats = service.Stats
	// ServiceQueueSnapshot is the qstat-style queue depth view.
	ServiceQueueSnapshot = service.QueueSnapshot
	// JobRecordStats reports the server's job-record pool behaviour
	// under completed-job retention.
	JobRecordStats = pbs.JobRecordStats
)

// RunService builds a simulation and resident instance, serves the
// configured source to drain, and returns the report.
var (
	RunService               = service.Run
	NewService               = service.New
	DefaultServiceObjectives = service.DefaultObjectives
)

// ParseResourceRequest parses a qsub -l string (the paper's
// "nodes=k:ppn=q:acpn=x") into a JobSpec; FormatResourceRequest is
// its inverse.
var (
	ParseResourceRequest  = pbs.ParseResourceRequest
	FormatResourceRequest = pbs.FormatResourceRequest
)

// Experiment drivers: one per figure of the paper's evaluation, plus
// the ablations described in DESIGN.md.
type (
	Fig7aPoint = core.Fig7aPoint
	Fig7bPoint = core.Fig7bPoint
	Fig8Point  = core.Fig8Point
	Fig9Point  = core.Fig9Point
	// ScalePoint is one row of the cluster-scale experiment (scheduler
	// cycle time and dynamic-request latency vs cluster size).
	ScalePoint = core.ScalePoint
	// BreakdownPoint is one row of the profiler's breakdown figure
	// (per-phase latency attribution vs cluster size).
	BreakdownPoint = core.BreakdownPoint
	// SLOPoint is one row of the live-telemetry figure (scrape series
	// plus SLO compliance at one cluster size).
	SLOPoint = core.SLOPoint
	// AuditedPoint is one row of the audited scale ladder: a
	// ScalePoint plus the flight recording, invariant counters, and
	// digest rounds of the run that produced it.
	AuditedPoint = core.AuditedPoint
	// AuditEvent is one recorded state-delta event.
	AuditEvent = audit.Event
	// ServerMode selects the server ablation for the scale ladder.
	ServerMode = core.ServerMode
	// ServePoint is one row of the online-service figure (sustained
	// open-loop ingest with steady-state SLO evaluation).
	ServePoint = core.ServePoint
)

// Server modes for ScaleMode/BreakdownMode.
const (
	ServerFaithful = core.ServerFaithful
	ServerSharded  = core.ServerSharded
)

// Experiment functions and table renderers.
var (
	// SetParallelism caps how many independent experiment trials run
	// concurrently (values < 1 reset to the core count); Parallelism
	// reports the cap. Figure output is byte-identical at every level.
	SetParallelism = core.SetParallelism
	Parallelism    = core.Parallelism

	Fig7a      = core.Fig7a
	Fig7b      = core.Fig7b
	Fig8       = core.Fig8
	Fig9       = core.Fig9
	Fig7aTable = core.Fig7aTable
	Fig7bTable = core.Fig7bTable
	Fig8Table  = core.Fig8Table
	Fig9Table  = core.Fig9Table

	// Scale replays a synthetic SWF workload on clusters of growing
	// size (up to 256 compute nodes / 2048 accelerators by default).
	// ScaleMode selects the server ablation: ServerFaithful is the
	// paper's serial pbs_server and global Maui cycle, ServerSharded
	// the partitioned fast path that extends the ladder to the
	// ScaleSizesExtended rungs (1024 and 4096 compute nodes).
	Scale              = core.Scale
	ScaleMode          = core.ScaleMode
	ScaleTable         = core.ScaleTable
	ScaleShardedTable  = core.ScaleShardedTable
	ScaleSizes         = core.ScaleSizes
	ScaleSizesExtended = core.ScaleSizesExtended
	ParseServerMode    = core.ParseServerMode
	ShardsFor          = core.ShardsFor
	PartitionsFor      = core.PartitionsFor

	// Breakdown runs the causal profiler over the scale ladder: the
	// paper's static-vs-dynamic overhead decomposition, per phase,
	// at every cluster size. BreakdownMode profiles the chosen server
	// ablation so dacprof -diff can attribute what the sharding buys.
	Breakdown         = core.Breakdown
	BreakdownMode     = core.BreakdownMode
	BreakdownTable    = core.BreakdownTable
	DynBreakdownTable = core.DynBreakdownTable

	// ScaleAudited runs the scale ladder with a flight recorder per
	// point: every pbs/maui/netsim/gpusim/dac state mutation is
	// recorded, resource-conservation invariants are checked at every
	// scheduler cycle, and component state digests are captured on
	// the scrape cadence. WriteAuditRecording serializes a point's
	// event stream as JSONL for dacaudit.
	ScaleAudited        = core.ScaleAudited
	AuditTable          = core.AuditTable
	AuditBreaches       = core.AuditBreaches
	WriteAuditRecording = audit.WriteRecording

	// SLO replays the scale workload under an open-loop stream of
	// paced dynamic requests, scraping live telemetry on a virtual
	// interval and evaluating the figure's SLO set per window.
	SLO                = core.SLO
	SLOTable           = core.SLOTable
	SLOComplianceTable = core.SLOComplianceTable
	SLOSizes           = core.SLOSizes
	SLOObjectives      = core.SLOObjectives

	// Serve runs the online-service experiment: a resident instance
	// per cluster size absorbing a sustained open-loop Poisson stream,
	// reporting steady-state SLO compliance and the throughput ledger
	// dacbench turns into wall-clock events/sec and jobs/sec series.
	Serve                = core.Serve
	ServeOne             = core.ServeOne
	ServeTable           = core.ServeTable
	ServeComplianceTable = core.ServeComplianceTable
	ServeSizes           = core.ServeSizes
	ServeRate            = core.ServeRate

	AblationDynPriority          = core.AblationDynPriority
	AblationCollectiveGet        = core.AblationCollectiveGet
	AblationDynamicVsStatic      = core.AblationDynamicVsStatic
	AblationBackfill             = core.AblationBackfill
	AblationPartialAlloc         = core.AblationPartialAlloc
	AblationDoubleBuffer         = core.AblationDoubleBuffer
	AblationSchedulerPortability = core.AblationSchedulerPortability
)
