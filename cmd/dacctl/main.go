// Command dacctl runs a scripted session against a simulated DAC
// cluster and prints qsub/qstat/pbsnodes-style output — a guided tour
// of the batch system from the operator's point of view.
//
// Usage:
//
//	dacctl -scenario static    # static allocation (paper Figure 5)
//	dacctl -scenario dynamic   # dynamic allocation (paper Figure 6)
//	dacctl -scenario mixed     # a small mixed workload
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro"
	"repro/internal/metrics"
)

func main() {
	scenario := flag.String("scenario", "dynamic", "scenario to run: static, dynamic, mixed, restart")
	cns := flag.Int("cns", 2, "compute nodes")
	acs := flag.Int("acs", 5, "network-attached accelerators")
	lspec := flag.String("l", "nodes=1:ppn=2:acpn=2,walltime=00:01:00", "qsub -l resource string for the static scenario")
	flag.Parse()

	params := repro.DefaultParams()
	params.ComputeNodes = *cns
	params.Accelerators = *acs

	var err error
	switch *scenario {
	case "static":
		err = runStatic(params, *lspec)
	case "dynamic":
		err = runDynamic(params)
	case "mixed":
		err = runMixed(params)
	case "restart":
		err = runRestart(params)
	default:
		log.Fatalf("dacctl: unknown scenario %q", *scenario)
	}
	if err != nil {
		log.Fatalf("dacctl: %v", err)
	}
}

func printNodes(client *repro.Client) {
	nodes, err := client.Nodes()
	if err != nil {
		fmt.Printf("pbsnodes: %v\n", err)
		return
	}
	t := &metrics.Table{Title: "$ pbsnodes", Headers: []string{"node", "type", "cores", "used", "jobs"}}
	for _, n := range nodes {
		t.AddRow(n.Name, n.Type.String(), fmt.Sprint(n.Cores), fmt.Sprint(n.UsedCores), fmt.Sprint(n.Jobs))
	}
	t.Render(os.Stdout)
	fmt.Println()
}

func printStat(client *repro.Client, id string) {
	info, err := client.Stat(id)
	if err != nil {
		fmt.Printf("qstat: %v\n", err)
		return
	}
	fmt.Printf("$ qstat %s\n", id)
	fmt.Printf("  name=%s owner=%s state=%s nodes=%v\n", info.Spec.Name, info.Spec.Owner, info.State, info.Hosts)
	if len(info.AccHosts) > 0 {
		fmt.Printf("  static accelerators: %v\n", info.AccHosts)
	}
	if len(info.DynSets) > 0 {
		fmt.Printf("  dynamic sets: %v\n", info.DynSets)
	}
	fmt.Println()
}

func runStatic(params repro.Params, lspec string) error {
	spec, err := repro.ParseResourceRequest(lspec)
	if err != nil {
		return err
	}
	fmt.Printf("== static allocation: qsub -l %s ==\n", repro.FormatResourceRequest(spec))
	return repro.RunCluster(params, func(c *repro.Cluster, client *repro.Client) {
		hold := newHold(c)
		spec.Name, spec.Owner = "staticjob", "op"
		spec.Script = func(env *repro.JobEnv) {
			ac, hs, err := repro.Init(env)
			if err != nil {
				fmt.Printf("AC_Init: %v\n", err)
				return
			}
			defer ac.Finalize()
			st := ac.Stats()
			fmt.Printf("[app] AC_Init complete: waiting=%v connect=%v accelerators=%d\n",
				st.InitWaiting.Round(time.Millisecond), st.InitConnect.Round(time.Millisecond), len(hs))
			hold.wait()
		}
		id, err := client.Submit(spec)
		if err != nil {
			fmt.Printf("qsub: %v\n", err)
			return
		}
		fmt.Printf("$ qsub ... -> %s\n\n", id)
		c.Sim.Sleep(600 * time.Millisecond) // let it start
		printStat(client, id)
		printNodes(client)
		hold.release()
		client.Wait(id)
		fmt.Println("== after job completion ==")
		printNodes(client)
	})
}

func runDynamic(params repro.Params) error {
	fmt.Println("== dynamic allocation: AC_Get / AC_Free at runtime ==")
	return repro.RunCluster(params, func(c *repro.Cluster, client *repro.Client) {
		hold := newHold(c)
		got := newHold(c)
		id, err := client.Submit(repro.JobSpec{
			Name: "dynjob", Owner: "op", Nodes: 1, PPN: 2, ACPN: 1, Walltime: time.Minute,
			Script: func(env *repro.JobEnv) {
				ac, _, err := repro.Init(env)
				if err != nil {
					fmt.Printf("AC_Init: %v\n", err)
					return
				}
				defer ac.Finalize()
				clientID, hs, err := ac.Get(2)
				if err != nil {
					fmt.Printf("[app] AC_Get rejected: %v\n", err)
					return
				}
				st := ac.Stats()
				fmt.Printf("[app] AC_Get(2) -> client-id %d, hosts %v (batch=%v, mpi=%v)\n",
					clientID, hostNames(hs), st.Gets[0].Batch.Round(time.Millisecond), st.Gets[0].MPI.Round(time.Millisecond))
				got.release()
				hold.wait()
				if err := ac.Free(clientID); err != nil {
					fmt.Printf("[app] AC_Free: %v\n", err)
					return
				}
				fmt.Printf("[app] AC_Free(%d) done\n", clientID)
			},
		})
		if err != nil {
			fmt.Printf("qsub: %v\n", err)
			return
		}
		fmt.Printf("$ qsub ... -> %s\n\n", id)
		got.wait()
		fmt.Println("== while the dynamic set is held ==")
		printStat(client, id)
		printNodes(client)
		hold.release()
		info, _ := client.Wait(id)
		fmt.Println("== after release and completion ==")
		printNodes(client)
		for _, rec := range info.DynRecords {
			fmt.Printf("server record: req#%d count=%d %s arrive=%v replied=%v freed=%v\n",
				rec.ReqID, rec.Count, rec.State,
				rec.ArrivedAt.Round(time.Millisecond), rec.RepliedAt.Round(time.Millisecond), rec.FreedAt.Round(time.Millisecond))
		}
	})
}

func runMixed(params repro.Params) error {
	fmt.Println("== mixed workload: 6 jobs through the queue ==")
	return repro.RunCluster(params, func(c *repro.Cluster, client *repro.Client) {
		gen := repro.NewWorkloadGenerator(c.Sim, 7, 50*time.Millisecond, repro.DefaultWorkloadClasses())
		trace := repro.RecordTrace(gen, 6)
		ids, err := repro.ReplayTrace(c.Sim, client, trace)
		if err != nil {
			fmt.Printf("replay: %v\n", err)
			return
		}
		t := &metrics.Table{Title: "$ qstat (final)", Headers: []string{"job", "name", "state", "queued_ms", "ran_ms"}}
		g := metrics.Gantt{Title: "timeline ('.' queued, '#' running)", Width: 60}
		for _, id := range ids {
			info, err := client.Wait(id)
			if err != nil {
				fmt.Printf("wait: %v\n", err)
				return
			}
			t.AddRow(info.ID, info.Spec.Name, info.State.String(),
				metrics.Ms(info.StartedAt-info.SubmittedAt), metrics.Ms(info.CompletedAt-info.StartedAt))
			g.Add(info.Spec.Name, info.SubmittedAt, info.StartedAt, info.CompletedAt)
		}
		t.Render(os.Stdout)
		fmt.Println()
		g.Render(os.Stdout)
	})
}

func runRestart(params repro.Params) error {
	fmt.Println("== head-node failover: checkpoint, crash, restore ==")
	return repro.RunCluster(params, func(c *repro.Cluster, client *repro.Client) {
		id, err := client.Submit(repro.JobSpec{
			Name: "survivor", Owner: "op", Nodes: 1, PPN: 2, ACPN: 1, Walltime: time.Minute,
			Script: func(env *repro.JobEnv) {
				ac, _, err := repro.Init(env)
				if err != nil {
					fmt.Printf("AC_Init: %v\n", err)
					return
				}
				defer ac.Finalize()
				c.Sim.Sleep(400 * time.Millisecond) // runs across the crash
			},
		})
		if err != nil {
			fmt.Printf("qsub: %v\n", err)
			return
		}
		c.Sim.Sleep(250 * time.Millisecond)
		fmt.Printf("[%v] job %s running; taking serverdb checkpoint\n", c.Sim.Now().Round(time.Millisecond), id)
		snap := c.Server.Checkpoint()
		c.Server.Stop()
		fmt.Printf("[%v] *** pbs_server crashed ***\n", c.Sim.Now().Round(time.Millisecond))
		c.Sim.Sleep(50 * time.Millisecond)

		replacement := repro.NewServer(c.Net, params.Server)
		replacement.SetScheduler(c.Sched.Endpoint())
		if err := replacement.Restore(snap); err != nil {
			fmt.Printf("restore: %v\n", err)
			return
		}
		replacement.Start()
		fmt.Printf("[%v] replacement server restored %d job(s), %d node(s)\n",
			c.Sim.Now().Round(time.Millisecond), len(snap.Jobs), len(snap.Nodes))

		info, err := client.Wait(id)
		if err != nil {
			fmt.Printf("wait: %v\n", err)
			return
		}
		fmt.Printf("[%v] job finished in state %v — the application never noticed\n",
			c.Sim.Now().Round(time.Millisecond), info.State)
		printNodes(client)
	})
}

func hostNames(hs []*repro.Accel) []string {
	out := make([]string, len(hs))
	for i, h := range hs {
		out[i] = h.Host()
	}
	return out
}

// hold is a one-shot release latch for pacing scripted scenarios.
type hold struct {
	c  *repro.Cluster
	ch *holdState
}

type holdState struct {
	released bool
}

func newHold(c *repro.Cluster) *hold {
	return &hold{c: c, ch: &holdState{}}
}

func (h *hold) release() { h.ch.released = true }

func (h *hold) wait() {
	for !h.ch.released {
		h.c.Sim.Sleep(10 * time.Millisecond)
	}
}
