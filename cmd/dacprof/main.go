// Command dacprof is the causal critical-path profiler for capture
// files recorded by the simulated DAC testbed (dacsim -fig breakdown
// -capture, or any trace.WriteCapture stream).
//
// It reconstructs each job's causal chain across the batch-system
// layers and prints an exact per-phase attribution of every job's
// end-to-end virtual-time latency, the aggregate critical-path
// owners, and — in diff mode — the phase responsible for drift
// between two captures.
//
// Usage:
//
//	dacprof capture.jsonl                 # phase + critical-path tables
//	dacprof -jobs capture.jsonl           # add the per-job attribution
//	dacprof -csv capture.jsonl            # machine-readable output
//	dacprof -folded out.folded capture.jsonl   # flamegraph stacks
//	dacprof -top 5 capture.jsonl               # wider critical-path table
//	dacprof -diff old.jsonl new.jsonl     # name the drifting phase
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/metrics"
	"repro/internal/prof"
	"repro/internal/trace"
)

func readCapture(path string) []trace.Event {
	f, err := os.Open(path)
	if err != nil {
		log.Fatalf("dacprof: %v", err)
	}
	defer f.Close()
	events, err := trace.ReadCapture(f)
	if err != nil {
		log.Fatalf("dacprof: %s: %v", path, err)
	}
	return events
}

// analyze profiles one capture file and reports incomplete chains.
func analyze(path string) (*prof.Profile, []trace.Event) {
	events := readCapture(path)
	p := prof.Analyze(events)
	if n := len(p.Incomplete); n > 0 {
		fmt.Fprintf(os.Stderr, "dacprof: %s: %d incomplete causal chains (first: %s)\n",
			path, n, p.Incomplete[0])
	}
	return p, events
}

// summarize merges the profiles of several captures.
func summarize(profiles []*prof.Profile) *prof.Summary {
	sum := prof.Summarize(profiles[0])
	for _, p := range profiles[1:] {
		sum.Merge(prof.Summarize(p))
	}
	return sum
}

func main() {
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	jobs := flag.Bool("jobs", false, "include the exact per-job attribution table")
	top := flag.Int("top", 3, "critical-path owners to list")
	folded := flag.String("folded", "", "write folded flamegraph stacks (flamegraph.pl / inferno format) to this file")
	diff := flag.String("diff", "", "baseline capture to diff against: report per-phase drift and the top drifter")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: dacprof [flags] capture.jsonl [capture.jsonl ...]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	emit := func(t *metrics.Table) {
		var err error
		if *csv {
			err = t.CSV(os.Stdout)
		} else {
			err = t.Render(os.Stdout)
		}
		if err != nil {
			log.Fatalf("dacprof: %v", err)
		}
		fmt.Println()
	}

	var profiles []*prof.Profile
	var streams [][]trace.Event
	for _, path := range flag.Args() {
		p, events := analyze(path)
		profiles = append(profiles, p)
		streams = append(streams, events)
	}
	sum := summarize(profiles)

	if *diff != "" {
		old, _ := analyze(*diff)
		deltas := prof.Diff(prof.Summarize(old), sum)
		emit(prof.DiffTable(deltas))
		if d, ok := prof.TopDrifter(deltas); ok {
			fmt.Printf("dacprof: top drifter: %s (%+.1f ms)\n", d.Name, float64(d.Delta)/1e6)
		}
		return
	}

	emit(sum.StaticTable())
	if sum.Dyns > 0 || sum.Rejected > 0 {
		emit(sum.DynTable())
	}
	emit(sum.PathTable(*top))
	if *jobs {
		for _, p := range profiles {
			emit(prof.JobTable(p))
		}
	}

	if *folded != "" {
		f, err := os.Create(*folded)
		if err != nil {
			log.Fatalf("dacprof: %v", err)
		}
		// Duplicate stacks across captures are fine: the folded format
		// is additive, flamegraph tools sum repeated lines.
		for _, events := range streams {
			if err := prof.WriteFolded(f, events); err != nil {
				log.Fatalf("dacprof: folded: %v", err)
			}
		}
		if err := f.Close(); err != nil {
			log.Fatalf("dacprof: folded: %v", err)
		}
		fmt.Fprintf(os.Stderr, "dacprof: wrote folded stacks to %s\n", *folded)
	}
}
