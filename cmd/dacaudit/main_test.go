package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/audit"
	"repro/internal/cluster"
	"repro/internal/core"
)

// record writes events to a JSONL file under dir and returns its path.
func record(t *testing.T, dir, name string, events []audit.Event) string {
	t.Helper()
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	defer f.Close()
	if err := audit.WriteRecording(f, events); err != nil {
		t.Fatalf("write recording: %v", err)
	}
	return path
}

// auditedEvents runs the smallest audited ladder point and returns
// its recording.
func auditedEvents(t *testing.T) []audit.Event {
	t.Helper()
	pts, err := core.ScaleAudited(cluster.Default(), []int{8}, core.ServerFaithful)
	if err != nil {
		t.Fatalf("ScaleAudited: %v", err)
	}
	if pts[0].Breaches != 0 {
		t.Fatalf("clean run reported %d breaches", pts[0].Breaches)
	}
	return pts[0].Events
}

// Injecting a single mutated event into a real recording must make
// dacaudit -diff name exactly that event: its index, the responsible
// component, and its virtual timestamp.
func TestDiffNamesFirstDivergentEvent(t *testing.T) {
	events := auditedEvents(t)
	if len(events) < 100 {
		t.Fatalf("recording too short to mutate meaningfully: %d events", len(events))
	}
	dir := t.TempDir()
	pathA := record(t, dir, "a.jsonl", events)

	mutated := make([]audit.Event, len(events))
	copy(mutated, events)
	idx := len(mutated) / 2
	mutated[idx].A++ // a corrupted payload: e.g. a free-count off by one
	pathB := record(t, dir, "b.jsonl", mutated)

	var out, errb strings.Builder
	if code := run([]string{"-diff", pathA, pathB}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1; stderr: %s", code, errb.String())
	}
	want := fmt.Sprintf("first divergence at event %d: component %s, virtual time %.3fms",
		idx, events[idx].Comp, float64(events[idx].VT)/1e6)
	if !strings.Contains(out.String(), want) {
		t.Fatalf("diff output missing %q:\n%s", want, out.String())
	}
	if !strings.Contains(out.String(), audit.FormatEvent(events[idx])) {
		t.Fatalf("diff output missing the divergent event line:\n%s", out.String())
	}
}

// Identical recordings must diff clean with exit 0.
func TestDiffIdenticalRecordings(t *testing.T) {
	events := auditedEvents(t)
	dir := t.TempDir()
	pathA := record(t, dir, "a.jsonl", events)
	pathB := record(t, dir, "b.jsonl", events)
	var out, errb strings.Builder
	if code := run([]string{"-diff", pathA, pathB}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, want 0; stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "identical") {
		t.Fatalf("diff output: %s", out.String())
	}
}

// The summary mode reports component counts and digest sums, and
// flags breach events with a non-zero exit.
func TestSummaryReportsBreaches(t *testing.T) {
	events := auditedEvents(t)
	dir := t.TempDir()
	clean := record(t, dir, "clean.jsonl", events)
	var out, errb strings.Builder
	if code := run([]string{clean}, &out, &errb); code != 0 {
		t.Fatalf("clean summary exit %d; stderr: %s", code, errb.String())
	}
	for _, want := range []string{"events by component", "pbs", "netsim", "digests", "invariant breaches: 0"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("summary missing %q:\n%s", want, out.String())
		}
	}

	poisoned := append(append([]audit.Event{}, events...), audit.Event{
		Seq: uint64(len(events)), Kind: audit.KindBreach, Comp: "pbs",
		Subj: "conservation.acc", Detail: "test", A: 1, B: 2,
	})
	bad := record(t, dir, "bad.jsonl", poisoned)
	out.Reset()
	if code := run([]string{bad}, &out, &errb); code != 1 {
		t.Fatalf("breach summary exit %d, want 1", code)
	}
	if !strings.Contains(out.String(), "invariant breaches: 1") {
		t.Fatalf("summary missing breach count:\n%s", out.String())
	}
}
