// Command dacaudit inspects flight recordings written by the audit
// layer (dacsim -audit -audit-out writes them; any audit.Recorder can
// via WriteRecording).
//
// Usage:
//
//	dacaudit rec.jsonl              # summarize one recording
//	dacaudit -diff a.jsonl b.jsonl  # first divergence between two runs
//
// The summary reports per-component event counts, invariant breaches,
// and digest rounds; it exits non-zero when the recording contains
// breach events. The diff walks both recordings to the first
// divergent event — the responsible component, its virtual timestamp,
// and the surrounding event window from each side — and exits
// non-zero when the recordings differ.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/audit"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dacaudit", flag.ContinueOnError)
	fs.SetOutput(stderr)
	diff := fs.Bool("diff", false, "diff two recordings to their first divergence")
	context := fs.Int("context", 4, "events of context around the divergence")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *diff {
		if fs.NArg() != 2 {
			fmt.Fprintln(stderr, "dacaudit: -diff wants exactly two recordings")
			return 2
		}
		return runDiff(fs.Arg(0), fs.Arg(1), *context, stdout, stderr)
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "dacaudit: want one recording (or -diff a b)")
		return 2
	}
	return runSummary(fs.Arg(0), stdout, stderr)
}

func load(path string, stderr io.Writer) ([]audit.Event, bool) {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(stderr, "dacaudit: %v\n", err)
		return nil, false
	}
	defer f.Close()
	ev, err := audit.ReadRecording(f)
	if err != nil {
		fmt.Fprintf(stderr, "dacaudit: %s: %v\n", path, err)
		return nil, false
	}
	return ev, true
}

func runDiff(pathA, pathB string, context int, stdout, stderr io.Writer) int {
	a, ok := load(pathA, stderr)
	if !ok {
		return 2
	}
	b, ok := load(pathB, stderr)
	if !ok {
		return 2
	}
	d := audit.Diff(a, b, context)
	if err := audit.WriteDivergence(stdout, d, pathA, pathB); err != nil {
		fmt.Fprintf(stderr, "dacaudit: %v\n", err)
		return 2
	}
	if d != nil {
		return 1
	}
	return 0
}

func runSummary(path string, stdout, stderr io.Writer) int {
	events, ok := load(path, stderr)
	if !ok {
		return 2
	}
	fmt.Fprintf(stdout, "%s: %d events\n", path, len(events))
	if len(events) == 0 {
		return 0
	}
	fmt.Fprintf(stdout, "virtual span: %.3fms .. %.3fms\n",
		float64(events[0].VT)/1e6, float64(events[len(events)-1].VT)/1e6)

	type key struct {
		comp string
		kind audit.Kind
	}
	counts := make(map[key]int)
	var breaches []audit.Event
	digests := make(map[string]audit.Event)
	rounds := int64(-1)
	for _, e := range events {
		counts[key{e.Comp, e.Kind}]++
		switch e.Kind {
		case audit.KindBreach:
			breaches = append(breaches, e)
		case audit.KindDigest:
			digests[e.Subj] = e
			if e.B > rounds {
				rounds = e.B
			}
		}
	}
	keys := make([]key, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].comp != keys[j].comp {
			return keys[i].comp < keys[j].comp
		}
		return keys[i].kind < keys[j].kind
	})
	fmt.Fprintln(stdout, "events by component and kind:")
	for _, k := range keys {
		fmt.Fprintf(stdout, "  %-8s %-7s %d\n", k.comp, k.kind, counts[k])
	}
	if len(digests) > 0 {
		names := make([]string, 0, len(digests))
		for n := range digests {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Fprintf(stdout, "digests (%d rounds), final sums:\n", rounds+1)
		for _, n := range names {
			fmt.Fprintf(stdout, "  %-14s %#016x\n", n, uint64(digests[n].A))
		}
	}
	fmt.Fprintf(stdout, "invariant breaches: %d\n", len(breaches))
	for _, e := range breaches {
		fmt.Fprintf(stdout, "  %s\n", audit.FormatEvent(e))
	}
	if len(breaches) > 0 {
		return 1
	}
	return 0
}
