// Command dacstat renders the scrape files written by
// dacsim -fig slo -scrape-out: a per-instrument summary of a run, the
// full per-window series of one instrument, or a diff of two runs.
//
// Usage:
//
//	dacstat scrape-256.jsonl                          # per-instrument summary
//	dacstat -windows -name pbs.dyn_latency s.jsonl    # one instrument's window series
//	dacstat -csv scrape-256.jsonl                     # machine-readable output
//	dacstat -diff scrape-a.jsonl scrape-b.jsonl       # compare two runs
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
	"time"

	"repro"
	"repro/internal/metrics"
)

func main() {
	windows := flag.Bool("windows", false, "render the per-window series instead of the summary (use -name to select instruments)")
	name := flag.String("name", "", "only instruments whose name contains this substring")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	diff := flag.Bool("diff", false, "compare two scrape files (old new)")
	flag.Parse()

	emit := func(t *metrics.Table) {
		var err error
		if *csv {
			err = t.CSV(os.Stdout)
		} else {
			err = t.Render(os.Stdout)
		}
		if err != nil {
			log.Fatalf("dacstat: %v", err)
		}
		fmt.Println()
	}

	args := flag.Args()
	switch {
	case *diff:
		if len(args) != 2 {
			log.Fatalf("dacstat: -diff needs exactly two scrape files, got %d", len(args))
		}
		emit(diffTable(load(args[0]), load(args[1]), args[0], args[1], *name))
	case len(args) != 1:
		fmt.Fprintln(os.Stderr, "usage: dacstat [-windows] [-name SUBSTR] [-csv] SCRAPE.jsonl")
		fmt.Fprintln(os.Stderr, "       dacstat -diff [-name SUBSTR] [-csv] OLD.jsonl NEW.jsonl")
		os.Exit(2)
	case *windows:
		emit(windowTable(load(args[0]), args[0], *name))
	default:
		emit(summaryTable(load(args[0]), args[0], *name))
	}
}

func load(path string) []repro.TelemetryWindow {
	f, err := os.Open(path)
	if err != nil {
		log.Fatalf("dacstat: %v", err)
	}
	defer f.Close()
	wins, err := repro.ReadScrapeJSONL(f)
	if err != nil {
		log.Fatalf("dacstat: %s: %v", path, err)
	}
	if len(wins) == 0 {
		log.Fatalf("dacstat: %s: no scrape windows", path)
	}
	return wins
}

// instrumentStats aggregates one instrument's rows across a run.
type instrumentStats struct {
	name, kind string
	windows    int     // windows in which the instrument appeared
	active     int     // windows with a non-zero delta
	total      float64 // final cumulative value
	deltaSum   float64
	deltaMax   float64
	p50Worst   time.Duration // histograms: largest per-window p50
	p99Worst   time.Duration
	maxWorst   time.Duration
}

// collect folds a window series into per-instrument aggregates,
// returned in (name, kind) order. filter narrows by name substring.
func collect(wins []repro.TelemetryWindow, filter string) []*instrumentStats {
	byKey := map[string]*instrumentStats{}
	var order []string
	for _, w := range wins {
		for _, r := range w.Rows {
			if filter != "" && !strings.Contains(r.Name, filter) {
				continue
			}
			key := r.Name + "\x00" + string(r.Kind)
			st := byKey[key]
			if st == nil {
				st = &instrumentStats{name: r.Name, kind: string(r.Kind)}
				byKey[key] = st
				order = append(order, key)
			}
			st.windows++
			st.total = r.Total
			st.deltaSum += r.Delta
			if r.Delta != 0 {
				st.active++
			}
			if r.Delta > st.deltaMax {
				st.deltaMax = r.Delta
			}
			if r.P50 > st.p50Worst {
				st.p50Worst = r.P50
			}
			if r.P99 > st.p99Worst {
				st.p99Worst = r.P99
			}
			if r.Max > st.maxWorst {
				st.maxWorst = r.Max
			}
		}
	}
	sort.Strings(order)
	out := make([]*instrumentStats, len(order))
	for i, key := range order {
		out[i] = byKey[key]
	}
	return out
}

// num renders a float compactly (totals and deltas mix counts,
// gauges, and seconds).
func num(v float64) string {
	s := fmt.Sprintf("%.4f", v)
	s = strings.TrimRight(s, "0")
	return strings.TrimSuffix(s, ".")
}

// dur renders a histogram statistic, "-" when the instrument never
// observed anything.
func dur(d time.Duration) string {
	if d == 0 {
		return "-"
	}
	return metrics.Ms(d)
}

func summaryTable(wins []repro.TelemetryWindow, path, filter string) *metrics.Table {
	t := &metrics.Table{
		Title: fmt.Sprintf("Scrape summary: %s (%d windows, %v of virtual time)",
			path, len(wins), wins[len(wins)-1].End-wins[0].Start),
		Headers: []string{"instrument", "kind", "windows", "active",
			"final_total", "delta_sum", "delta_max", "p50_worst_ms", "p99_worst_ms", "max_ms"},
	}
	for _, st := range collect(wins, filter) {
		t.AddRow(st.name, st.kind, fmt.Sprint(st.windows), fmt.Sprint(st.active),
			num(st.total), num(st.deltaSum), num(st.deltaMax),
			dur(st.p50Worst), dur(st.p99Worst), dur(st.maxWorst))
	}
	return t
}

func windowTable(wins []repro.TelemetryWindow, path, filter string) *metrics.Table {
	t := &metrics.Table{
		Title: fmt.Sprintf("Scrape windows: %s", path),
		Headers: []string{"window", "start_ms", "end_ms", "instrument", "kind",
			"total", "delta", "p50_ms", "p99_ms", "p999_ms", "mean_ms", "max_ms"},
	}
	for _, w := range wins {
		for _, r := range w.Rows {
			if filter != "" && !strings.Contains(r.Name, filter) {
				continue
			}
			t.AddRow(fmt.Sprint(w.Index), metrics.Ms(w.Start), metrics.Ms(w.End),
				r.Name, string(r.Kind), num(r.Total), num(r.Delta),
				dur(r.P50), dur(r.P99), dur(r.P999), dur(r.Mean), dur(r.Max))
		}
	}
	return t
}

func diffTable(oldW, newW []repro.TelemetryWindow, oldPath, newPath, filter string) *metrics.Table {
	oldStats := collect(oldW, filter)
	newStats := collect(newW, filter)
	oldBy := map[string]*instrumentStats{}
	for _, st := range oldStats {
		oldBy[st.name+"\x00"+st.kind] = st
	}
	newBy := map[string]*instrumentStats{}
	for _, st := range newStats {
		newBy[st.name+"\x00"+st.kind] = st
	}
	var keys []string
	for k := range oldBy {
		keys = append(keys, k)
	}
	for k := range newBy {
		if _, ok := oldBy[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)

	t := &metrics.Table{
		Title: fmt.Sprintf("Scrape diff: %s -> %s (final totals and worst per-window p99)",
			oldPath, newPath),
		Headers: []string{"instrument", "kind", "total_old", "total_new", "total_diff",
			"p99_worst_old_ms", "p99_worst_new_ms", "p99_diff_ms"},
	}
	for _, k := range keys {
		o, n := oldBy[k], newBy[k]
		name, kind := k[:strings.Index(k, "\x00")], k[strings.Index(k, "\x00")+1:]
		cell := func(st *instrumentStats, f func(*instrumentStats) string) string {
			if st == nil {
				return "-"
			}
			return f(st)
		}
		totalDiff, p99Diff := "-", "-"
		if o != nil && n != nil {
			totalDiff = num(n.total - o.total)
			if o.p99Worst != 0 || n.p99Worst != 0 {
				p99Diff = metrics.Ms(n.p99Worst - o.p99Worst)
			}
		}
		t.AddRow(name, kind,
			cell(o, func(st *instrumentStats) string { return num(st.total) }),
			cell(n, func(st *instrumentStats) string { return num(st.total) }),
			totalDiff,
			cell(o, func(st *instrumentStats) string { return dur(st.p99Worst) }),
			cell(n, func(st *instrumentStats) string { return dur(st.p99Worst) }),
			p99Diff)
	}
	return t
}
