package main

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro"
)

func testWindows() []repro.TelemetryWindow {
	return []repro.TelemetryWindow{
		{Index: 0, Start: 0, End: 5 * time.Second, Rows: []repro.TelemetryRow{
			{Name: "pbs.dyn_latency", Kind: "histogram", Total: 3, Delta: 3,
				P50: 40 * time.Millisecond, P99: 55 * time.Millisecond, Max: 55 * time.Millisecond},
			{Name: "pbs.submits", Kind: "counter", Total: 10, Delta: 10},
		}},
		{Index: 1, Start: 5 * time.Second, End: 10 * time.Second, Rows: []repro.TelemetryRow{
			{Name: "pbs.dyn_latency", Kind: "histogram", Total: 7, Delta: 4,
				P50: 45 * time.Millisecond, P99: 60 * time.Millisecond, Max: 61 * time.Millisecond},
			{Name: "pbs.submits", Kind: "counter", Total: 25, Delta: 15},
		}},
	}
}

func TestCollect(t *testing.T) {
	stats := collect(testWindows(), "")
	if len(stats) != 2 {
		t.Fatalf("got %d instruments, want 2", len(stats))
	}
	// Sorted by name: dyn_latency before submits.
	dyn, sub := stats[0], stats[1]
	if dyn.name != "pbs.dyn_latency" || sub.name != "pbs.submits" {
		t.Fatalf("order: %s, %s", dyn.name, sub.name)
	}
	if dyn.total != 7 || dyn.deltaSum != 7 || dyn.windows != 2 || dyn.active != 2 {
		t.Fatalf("dyn stats: %+v", dyn)
	}
	if dyn.p99Worst != 60*time.Millisecond || dyn.maxWorst != 61*time.Millisecond {
		t.Fatalf("dyn worst: p99=%v max=%v", dyn.p99Worst, dyn.maxWorst)
	}
	if sub.total != 25 || sub.deltaSum != 25 || sub.deltaMax != 15 {
		t.Fatalf("submit stats: %+v", sub)
	}
	if got := collect(testWindows(), "dyn"); len(got) != 1 || got[0].name != "pbs.dyn_latency" {
		t.Fatalf("filter: %+v", got)
	}
}

func TestNumAndDur(t *testing.T) {
	if got := num(25); got != "25" {
		t.Fatalf("num(25) = %q", got)
	}
	if got := num(0.25); got != "0.25" {
		t.Fatalf("num(0.25) = %q", got)
	}
	if got := dur(0); got != "-" {
		t.Fatalf("dur(0) = %q", got)
	}
	if got := dur(55 * time.Millisecond); got != "55.0" {
		t.Fatalf("dur(55ms) = %q", got)
	}
}

func TestSummaryAndWindowTables(t *testing.T) {
	var b bytes.Buffer
	if err := summaryTable(testWindows(), "x.jsonl", "").Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"pbs.dyn_latency", "p99_worst_ms", "60.0", "25"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
	b.Reset()
	if err := windowTable(testWindows(), "x.jsonl", "dyn").Render(&b); err != nil {
		t.Fatal(err)
	}
	out = b.String()
	if strings.Contains(out, "pbs.submits") {
		t.Fatalf("window table ignored the name filter:\n%s", out)
	}
	if !strings.Contains(out, "5000.0") || !strings.Contains(out, "45.0") {
		t.Fatalf("window table:\n%s", out)
	}
}

func TestDiffTable(t *testing.T) {
	oldW := testWindows()
	newW := testWindows()
	newW[1].Rows[0].P99 = 80 * time.Millisecond
	newW[1].Rows[1].Total = 40
	// An instrument only present in the new run shows "-" on the old side.
	newW[1].Rows = append(newW[1].Rows, repro.TelemetryRow{Name: "net.msgs", Kind: "counter", Total: 5, Delta: 5})

	var b bytes.Buffer
	if err := diffTable(oldW, newW, "a.jsonl", "b.jsonl", "").Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"net.msgs", "20.0", "15", "-"} {
		if !strings.Contains(out, want) {
			t.Fatalf("diff missing %q:\n%s", want, out)
		}
	}
}
