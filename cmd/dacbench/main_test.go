package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestVms(t *testing.T) {
	if got := vms(1500 * time.Microsecond); got != 1.5 {
		t.Fatalf("vms = %v, want 1.5", got)
	}
}

func report(series map[string]float64) *Report {
	return &Report{SchemaVersion: 1, Trials: 3, Series: series}
}

func TestCompareWithinTolerance(t *testing.T) {
	base := report(map[string]float64{"a": 100, "b": 0, "gone": 5})
	cand := report(map[string]float64{"a": 110, "b": 0, "new": 7})
	if failures := compare(base, cand, 0.15, 0.15); len(failures) != 0 {
		t.Fatalf("unexpected failures: %v", failures)
	}
}

func TestCompareDetectsRegression(t *testing.T) {
	base := report(map[string]float64{"a": 100, "b": 0})
	cand := report(map[string]float64{"a": 130, "b": 2})
	failures := compare(base, cand, 0.15, 0.15)
	if len(failures) != 2 {
		t.Fatalf("got %d failures, want 2: %v", len(failures), failures)
	}
}

// Throughput series gate one-sided: a drop beyond tolerance fails, a
// gain of any size passes, and the virtual-time tolerance does not
// apply to them.
func TestCompareThroughputDropOnly(t *testing.T) {
	base := report(map[string]float64{"a": 100})
	base.Throughput = map[string]float64{"serve/jobs_per_sec/x": 1000, "serve/events_per_sec/x": 5000}
	cand := report(map[string]float64{"a": 100})
	cand.Throughput = map[string]float64{"serve/jobs_per_sec/x": 3000, "serve/events_per_sec/x": 4000}
	if failures := compare(base, cand, 0.0, 0.25); len(failures) != 0 {
		t.Fatalf("gain or small drop failed: %v", failures)
	}
	cand.Throughput["serve/events_per_sec/x"] = 3000 // 40% drop
	failures := compare(base, cand, 0.0, 0.25)
	if len(failures) != 1 {
		t.Fatalf("got %d failures, want 1: %v", len(failures), failures)
	}
}

func TestLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, []byte(`{"schema_version":1,"trials":3,"series_virtual_ms":{"a":1}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := load(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if rep.Series["a"] != 1 {
		t.Fatalf("series = %v", rep.Series)
	}
	if _, err := load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("load of missing file succeeded")
	}
	empty := filepath.Join(t.TempDir(), "empty.json")
	if err := os.WriteFile(empty, []byte(`{"schema_version":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := load(empty); err == nil {
		t.Fatal("load of series-less report succeeded")
	}
}

// A recorded report must carry every figure and scale series and be
// self-consistent against itself under compare.
func TestRecordSelfConsistent(t *testing.T) {
	rep, err := record(1, []int{8}, []int{8}, []benchServePoint{{8, "faithful"}})
	if err != nil {
		t.Fatalf("record: %v", err)
	}
	for _, want := range []string{
		"fig7a/total/acs=6", "fig7b/total/acs=6", "fig8/total/load=20",
		"fig9/total/node=C", "scale/cycle_mean/cns=8", "scale/dyn_latency/cns=8",
		"scale_sharded/cycle_mean/cns=8", "scale_sharded/dyn_p99/cns=8",
		"serve/makespan/cns=8/mode=faithful",
	} {
		if _, ok := rep.Series[want]; !ok {
			t.Fatalf("series %q missing from recorded report", want)
		}
	}
	for _, want := range []string{
		"serve/events_per_sec/cns=8/mode=faithful", "serve/jobs_per_sec/cns=8/mode=faithful",
	} {
		if v, ok := rep.Throughput[want]; !ok || v <= 0 {
			t.Fatalf("throughput %q missing or zero in recorded report", want)
		}
	}
	if failures := compare(rep, rep, 0.0, 0.0); len(failures) != 0 {
		t.Fatalf("report deviates from itself: %v", failures)
	}
}
