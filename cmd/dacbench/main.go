// Command dacbench produces and compares machine-readable benchmark
// reports of the simulated DAC testbed.
//
// Record mode runs every figure experiment plus the cluster-scale
// ladder and writes a BENCH_<date>.json report. All recorded series
// are *virtual* times — the simulation's deterministic clock — so
// they are stable across host machines and load; wall-clock times
// ride along as informational fields only.
//
// Compare mode checks a candidate report against a committed
// baseline and exits non-zero when any shared virtual-time series
// deviates by more than the tolerance (default ±15%), which is what
// the CI benchmark-regression gate runs on every PR:
//
//	dacbench -out BENCH_2026-08-05.json
//	dacbench -compare BENCH_baseline.json -candidate BENCH_new.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"testing"
	"time"

	"repro"
	"repro/internal/kernelbench"
)

// Report is the BENCH_<date>.json schema. Series maps a stable name
// ("fig7a/total/acs=3") to a virtual-time measurement in
// milliseconds; Wall maps an experiment to host seconds.
type Report struct {
	SchemaVersion int                `json:"schema_version"`
	Date          string             `json:"date"`
	GoVersion     string             `json:"go_version"`
	Trials        int                `json:"trials"`
	Series        map[string]float64 `json:"series_virtual_ms"`
	Wall          map[string]float64 `json:"wall_seconds"`
	// Allocs records the kernel microbenchmarks' allocs/op. Unlike the
	// wall times these are deterministic (the hot paths are pinned at
	// zero by tier-1 tests), so compare gates on any growth.
	Allocs map[string]float64 `json:"allocs_per_op,omitempty"`
	// Throughput records the online-service sustained-throughput
	// series: host-side events/sec and jobs/sec for a resident
	// instance absorbing an open-loop stream. These are wall-clock
	// numbers, so compare gates only on drops (candidate slower than
	// baseline by more than the throughput tolerance); speedups pass.
	Throughput map[string]float64 `json:"throughput_per_sec,omitempty"`
}

func vms(d time.Duration) float64 { return float64(d) / 1e6 }

// benchServePoint names one sustained-throughput measurement: a
// cluster size and the server ablation serving it.
type benchServePoint struct {
	n    int
	mode repro.ServerMode
}

// serveBenchHorizon is the virtual admission window per throughput
// point — long enough for the resident instance to reach steady
// state, short enough that the 1024-node faithful point stays a
// modest slice of a record run.
const serveBenchHorizon = 20 * time.Second

func record(trials int, scaleSizes, shardedSizes []int, servePoints []benchServePoint) (*Report, error) {
	rep := &Report{
		SchemaVersion: 1,
		Date:          time.Now().UTC().Format("2006-01-02"),
		GoVersion:     runtime.Version(),
		Trials:        trials,
		Series:        make(map[string]float64),
		Wall:          make(map[string]float64),
		Allocs:        make(map[string]float64),
		Throughput:    make(map[string]float64),
	}
	params := repro.DefaultParams()

	wall := func(name string, fn func() error) error {
		start := time.Now()
		if err := fn(); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		rep.Wall[name] = time.Since(start).Seconds()
		return nil
	}

	if err := wall("fig7a", func() error {
		pts, err := repro.Fig7a(params, 6, trials)
		if err != nil {
			return err
		}
		for _, pt := range pts {
			rep.Series[fmt.Sprintf("fig7a/waiting/acs=%d", pt.Accelerators)] = vms(pt.Waiting)
			rep.Series[fmt.Sprintf("fig7a/connect/acs=%d", pt.Accelerators)] = vms(pt.Connect)
			rep.Series[fmt.Sprintf("fig7a/total/acs=%d", pt.Accelerators)] = vms(pt.Total)
		}
		return nil
	}); err != nil {
		return nil, err
	}

	if err := wall("fig7b", func() error {
		pts, err := repro.Fig7b(params, 6, trials)
		if err != nil {
			return err
		}
		for _, pt := range pts {
			rep.Series[fmt.Sprintf("fig7b/batch/acs=%d", pt.Accelerators)] = vms(pt.Batch)
			rep.Series[fmt.Sprintf("fig7b/total/acs=%d", pt.Accelerators)] = vms(pt.Total)
		}
		return nil
	}); err != nil {
		return nil, err
	}

	if err := wall("fig8", func() error {
		pts, err := repro.Fig8(params, []int{0, 16, 20}, trials)
		if err != nil {
			return err
		}
		for _, pt := range pts {
			rep.Series[fmt.Sprintf("fig8/total/load=%d", pt.Load)] = vms(pt.Total)
		}
		return nil
	}); err != nil {
		return nil, err
	}

	if err := wall("fig9", func() error {
		pts, err := repro.Fig9(params, trials)
		if err != nil {
			return err
		}
		for _, pt := range pts {
			rep.Series[fmt.Sprintf("fig9/total/node=%s", pt.Node)] = vms(pt.Total)
		}
		return nil
	}); err != nil {
		return nil, err
	}

	// The scale ladder runs one point per wall() call so the host
	// wall-clock of each cluster size is measured here, at the CLI:
	// core.Scale itself reports only virtual time (the walltime
	// analyzer keeps it that way).
	for _, n := range scaleSizes {
		if err := wall(fmt.Sprintf("scale/cns=%d", n), func() error {
			pts, err := repro.Scale(params, []int{n})
			if err != nil {
				return err
			}
			pt := pts[0]
			rep.Series[fmt.Sprintf("scale/cycle_mean/cns=%d", pt.ComputeNodes)] = vms(pt.CycleMean)
			rep.Series[fmt.Sprintf("scale/cycle_max/cns=%d", pt.ComputeNodes)] = vms(pt.CycleMax)
			rep.Series[fmt.Sprintf("scale/dyn_latency/cns=%d", pt.ComputeNodes)] = vms(pt.DynLatency)
			rep.Series[fmt.Sprintf("scale/makespan/cns=%d", pt.ComputeNodes)] = vms(pt.Makespan)
			return nil
		}); err != nil {
			return nil, err
		}
	}

	// The audited rung: the smallest ladder point rerun with the
	// flight recorder, invariant engine, and digest ticker attached.
	// Recording costs no virtual time, so these series must sit on
	// top of the unaudited scale/cns=8 ones — the compare gate holds
	// the recorder's simulation-visible overhead at zero.
	if len(scaleSizes) > 0 {
		n := scaleSizes[0]
		if err := wall(fmt.Sprintf("scale_audited/cns=%d", n), func() error {
			pts, err := repro.ScaleAudited(params, []int{n}, repro.ServerFaithful)
			if err != nil {
				return err
			}
			if b := repro.AuditBreaches(pts); b != 0 {
				return fmt.Errorf("audited scale: %d invariant breaches", b)
			}
			pt := pts[0]
			rep.Series[fmt.Sprintf("scale_audited/cycle_mean/cns=%d", pt.ComputeNodes)] = vms(pt.CycleMean)
			rep.Series[fmt.Sprintf("scale_audited/makespan/cns=%d", pt.ComputeNodes)] = vms(pt.Makespan)
			return nil
		}); err != nil {
			return nil, err
		}
	}

	// The sharded-server rungs of the ladder: same workload through the
	// partitioned pbs_server and Maui cycle, recorded as their own
	// series so the ablation's virtual times are gated alongside the
	// faithful ones.
	for _, n := range shardedSizes {
		if err := wall(fmt.Sprintf("scale_sharded/cns=%d", n), func() error {
			pts, err := repro.ScaleMode(params, []int{n}, repro.ServerSharded)
			if err != nil {
				return err
			}
			pt := pts[0]
			rep.Series[fmt.Sprintf("scale_sharded/cycle_mean/cns=%d", pt.ComputeNodes)] = vms(pt.CycleMean)
			rep.Series[fmt.Sprintf("scale_sharded/cycle_max/cns=%d", pt.ComputeNodes)] = vms(pt.CycleMax)
			rep.Series[fmt.Sprintf("scale_sharded/dyn_p50/cns=%d", pt.ComputeNodes)] = vms(pt.DynP50)
			rep.Series[fmt.Sprintf("scale_sharded/dyn_p99/cns=%d", pt.ComputeNodes)] = vms(pt.DynP99)
			rep.Series[fmt.Sprintf("scale_sharded/makespan/cns=%d", pt.ComputeNodes)] = vms(pt.Makespan)
			return nil
		}); err != nil {
			return nil, err
		}
	}

	// The online-service sustained-throughput series: a resident
	// instance per (size, server mode) absorbs an open-loop Poisson
	// stream for a fixed virtual window; events/sec and jobs/sec are
	// the host wall-clock rates at which the simulator pushed that
	// window through. The virtual makespan of each point joins the
	// deterministic Series gate; the rates join the drop-only
	// Throughput gate.
	for _, sp := range servePoints {
		key := fmt.Sprintf("cns=%d/mode=%s", sp.n, sp.mode)
		start := time.Now()
		pts, err := repro.Serve(params, []int{sp.n}, sp.mode, 0, serveBenchHorizon)
		if err != nil {
			return nil, fmt.Errorf("serve/%s: %w", key, err)
		}
		elapsed := time.Since(start).Seconds()
		pt := pts[0]
		if pt.Completed != pt.Submitted {
			return nil, fmt.Errorf("serve/%s: drained %d of %d jobs", key, pt.Completed, pt.Submitted)
		}
		rep.Wall["serve/"+key] = elapsed
		rep.Series["serve/makespan/"+key] = vms(pt.Makespan)
		rep.Throughput["serve/events_per_sec/"+key] = float64(pt.Dispatches) / elapsed
		rep.Throughput["serve/jobs_per_sec/"+key] = float64(pt.Completed) / elapsed
	}

	// Kernel microbenchmarks: allocs/op is the gated number; ns/op is
	// host-dependent and rides along in Wall for the log only.
	for _, kb := range []struct {
		name string
		fn   func(*testing.B)
	}{
		{"kernel/event_dispatch", kernelbench.EventDispatch},
		{"kernel/sleep_wake", kernelbench.SleepWake},
		{"kernel/netsim_hop", kernelbench.NetsimHop},
		{"telemetry/hist_record", kernelbench.HistogramRecord},
		{"telemetry/registry_scrape", kernelbench.RegistryScrape},
		{"audit/record_disabled", kernelbench.AuditRecordDisabled},
		{"audit/record_enabled", kernelbench.AuditRecordEnabled},
		{"workload/arrivals_next", kernelbench.ArrivalsNext},
	} {
		r := testing.Benchmark(kb.fn)
		rep.Allocs[kb.name] = float64(r.AllocsPerOp())
		rep.Wall[kb.name+"_ns_op"] = float64(r.NsPerOp()) / 1e9
	}

	return rep, nil
}

func load(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(rep.Series) == 0 {
		return nil, fmt.Errorf("%s: no series", path)
	}
	return &rep, nil
}

// compare checks every series the baseline and candidate share (the
// virtual clock is deterministic, so shared series should match to
// well within the tolerance) and reports series present on only one
// side without failing on them — experiments may be added or retired.
// Throughput series are wall-clock, so they gate one-sided at tolTput:
// only a drop below baseline fails.
func compare(baseline, candidate *Report, tol, tolTput float64) (failures []string) {
	if baseline.Trials != candidate.Trials {
		fmt.Printf("note: trials differ (baseline %d, candidate %d); means may shift with jitter enabled\n",
			baseline.Trials, candidate.Trials)
	}
	names := make([]string, 0, len(baseline.Series))
	for name := range baseline.Series {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b := baseline.Series[name]
		c, ok := candidate.Series[name]
		if !ok {
			fmt.Printf("note: series %q missing from candidate\n", name)
			continue
		}
		var dev float64
		switch {
		case b == 0 && c == 0:
			continue
		case b == 0:
			dev = 1
		default:
			dev = (c - b) / b
			if dev < 0 {
				dev = -dev
			}
		}
		status := "ok"
		if dev > tol {
			status = "FAIL"
			failures = append(failures,
				fmt.Sprintf("%s: baseline %.3f ms, candidate %.3f ms (%.1f%% > %.0f%%)",
					name, b, c, dev*100, tol*100))
		}
		fmt.Printf("%-4s %-32s baseline %10.3f  candidate %10.3f  (%+.1f%%)\n",
			status, name, b, c, (c-b)/max(b, 1e-9)*100)
	}
	// Sort before printing: map iteration order would otherwise make
	// the compare log differ run to run (and trip the maporder
	// analyzer, which is how this loop got its sort).
	var added []string
	for name := range candidate.Series {
		if _, ok := baseline.Series[name]; !ok {
			added = append(added, name)
		}
	}
	sort.Strings(added)
	for _, name := range added {
		fmt.Printf("note: new series %q not in baseline\n", name)
	}

	// Throughput gate: sustained events/sec and jobs/sec are host
	// wall-clock rates, so only a drop is a regression — a slower
	// runner is absorbed by tolTput, a faster one sails through.
	if len(baseline.Throughput) > 0 {
		fmt.Println()
		tnames := make([]string, 0, len(baseline.Throughput))
		for name := range baseline.Throughput {
			tnames = append(tnames, name)
		}
		sort.Strings(tnames)
		for _, name := range tnames {
			b := baseline.Throughput[name]
			c, ok := candidate.Throughput[name]
			if !ok {
				fmt.Printf("note: throughput series %q missing from candidate\n", name)
				continue
			}
			status := "ok"
			if b > 0 && c < b*(1-tolTput) {
				status = "FAIL"
				failures = append(failures,
					fmt.Sprintf("%s: baseline %.0f/sec, candidate %.0f/sec (%.1f%% drop > %.0f%%)",
						name, b, c, (b-c)/b*100, tolTput*100))
			}
			fmt.Printf("%-4s %-44s baseline %12.0f/sec  candidate %12.0f/sec  (%+.1f%%)\n",
				status, name, b, c, (c-b)/max(b, 1e-9)*100)
		}
	}

	// Allocation gate: a kernel hot path that starts allocating is a
	// regression even when virtual times are unchanged, so any
	// allocs/op growth over the baseline fails. Shrinking is fine.
	if len(baseline.Allocs) > 0 {
		fmt.Println()
		anames := make([]string, 0, len(baseline.Allocs))
		for name := range baseline.Allocs {
			anames = append(anames, name)
		}
		sort.Strings(anames)
		for _, name := range anames {
			b := baseline.Allocs[name]
			c, ok := candidate.Allocs[name]
			if !ok {
				fmt.Printf("note: allocs series %q missing from candidate\n", name)
				continue
			}
			status := "ok"
			if c > b {
				status = "FAIL"
				failures = append(failures,
					fmt.Sprintf("%s: baseline %.0f allocs/op, candidate %.0f allocs/op (growth)", name, b, c))
			}
			fmt.Printf("%-4s %-32s baseline %7.0f allocs/op  candidate %7.0f allocs/op\n", status, name, b, c)
		}
	}
	return failures
}

func max(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func main() {
	out := flag.String("out", "", "write a benchmark report to this file (default BENCH_<date>.json)")
	trials := flag.Int("trials", 3, "trials per figure data point")
	parallel := flag.Int("parallel", 0, "trial parallelism (0 = all cores); virtual times are identical at every level")
	baselinePath := flag.String("compare", "", "baseline report; with -candidate, compare instead of recording")
	candidatePath := flag.String("candidate", "", "candidate report to check against -compare")
	tol := flag.Float64("tolerance", 0.15, "maximum relative deviation per virtual-time series")
	tolTput := flag.Float64("throughput-tolerance", 0.15, "maximum relative drop per wall-clock throughput series (gains always pass)")
	cpuProfile := flag.String("cpuprofile", "", "write a host-side CPU profile (runtime/pprof) of the record run to this file")
	memProfile := flag.String("memprofile", "", "write a host-side heap profile (runtime/pprof, after GC) on exit")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatalf("dacbench: cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("dacbench: cpuprofile: %v", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				log.Fatalf("dacbench: cpuprofile: %v", err)
			}
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				log.Fatalf("dacbench: memprofile: %v", err)
			}
			runtime.GC() // report live heap, not transient garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatalf("dacbench: memprofile: %v", err)
			}
			if err := f.Close(); err != nil {
				log.Fatalf("dacbench: memprofile: %v", err)
			}
		}()
	}

	if *baselinePath != "" {
		if *candidatePath == "" {
			log.Fatal("dacbench: -compare requires -candidate")
		}
		baseline, err := load(*baselinePath)
		if err != nil {
			log.Fatalf("dacbench: %v", err)
		}
		candidate, err := load(*candidatePath)
		if err != nil {
			log.Fatalf("dacbench: %v", err)
		}
		failures := compare(baseline, candidate, *tol, *tolTput)
		if len(failures) > 0 {
			fmt.Println()
			for _, f := range failures {
				fmt.Printf("regression: %s\n", f)
			}
			os.Exit(1)
		}
		fmt.Printf("\nall %d shared series within %.0f%% of baseline\n",
			len(baseline.Series), *tol*100)
		return
	}

	repro.SetParallelism(*parallel)
	// Both server modes climb to 4096 compute nodes: the faithful top
	// rungs pin the serialization effect the sharded series buys back
	// (the 4096-node serial server costs ~15s of host wall time — the
	// bulk of a record run — which is itself the ablation's point).
	rep, err := record(*trials, []int{8, 64, 256, 1024, 4096}, []int{1024, 4096},
		[]benchServePoint{
			{256, repro.ServerFaithful}, {256, repro.ServerSharded},
			{1024, repro.ServerFaithful}, {1024, repro.ServerSharded},
		})
	if err != nil {
		log.Fatalf("dacbench: %v", err)
	}
	path := *out
	if path == "" {
		path = fmt.Sprintf("BENCH_%s.json", rep.Date)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatalf("dacbench: %v", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		log.Fatalf("dacbench: %v", err)
	}
	fmt.Printf("dacbench: wrote %d series to %s\n", len(rep.Series), path)
}
