// Command dacserve runs the simulated DAC cluster as an online
// service: a resident instance absorbs an open-loop submission stream
// (Poisson, uniform, or bursty — deterministic under -seed) at a
// target rate for a virtual duration, then prints the steady-state
// SLO table (dynamic-request latency tail, scheduler cycle cost and
// occupancy, queue depth) and the sustained-throughput summary.
//
// Usage:
//
//	dacserve                                  # 64 compute nodes, default rate, 60s window
//	dacserve -cns 256 -rate 64 -for 2m        # explicit load point
//	dacserve -server sharded -cns 1024        # partitioned server ablation
//	dacserve -process burst -burst-len 32     # bursty arrivals
//	dacserve -scrape-out serve.jsonl          # live scrape series for dacstat
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro"
	"repro/internal/metrics"
)

func main() {
	cns := flag.Int("cns", 64, "compute nodes (accelerators and rate scale with this)")
	rate := flag.Float64("rate", 0, "open-loop submission rate in jobs per virtual second (0 = cns/4)")
	dur := flag.Duration("for", 0, "virtual admission window; the run then drains in-flight jobs (0 = 60s)")
	serverMode := flag.String("server", "faithful", "server ablation: faithful (serial pbs_server + global Maui cycle) or sharded (partitioned fast path)")
	process := flag.String("process", "poisson", "arrival process: poisson, uniform, or burst")
	burstLen := flag.Int("burst-len", 0, "with -process burst: jobs per burst (0 = 16)")
	burstFactor := flag.Float64("burst-factor", 0, "with -process burst: in-burst rate multiplier (0 = 8)")
	maxJobs := flag.Int("max-jobs", 0, "admission cap in jobs (0 = 2x the expected count for the window)")
	seed := flag.Uint64("seed", 0, "arrival and job-shape seed; 0 derives the ladder default from -cns")
	scrapeOut := flag.String("scrape-out", "", "write the live telemetry scrape series (JSONL, readable by dacstat) to this file")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	flag.Parse()

	mode, err := repro.ParseServerMode(*serverMode)
	if err != nil {
		log.Fatalf("dacserve: %v", err)
	}
	proc, err := repro.ParseArrivalProcess(*process)
	if err != nil {
		log.Fatalf("dacserve: %v", err)
	}
	if (*burstLen != 0 || *burstFactor != 0) && proc != repro.ArrivalBurst {
		log.Fatal("dacserve: -burst-len/-burst-factor require -process burst")
	}

	start := time.Now()
	pt, err := repro.ServeOne(repro.DefaultParams(), *cns, mode, repro.ArrivalConfig{
		Process:     proc,
		Rate:        *rate,
		Seed:        *seed,
		MaxJobs:     *maxJobs,
		BurstLen:    *burstLen,
		BurstFactor: *burstFactor,
	}, *dur)
	if err != nil {
		log.Fatalf("dacserve: %v", err)
	}
	elapsed := time.Since(start)

	emit := func(t *metrics.Table) {
		var err error
		if *csv {
			err = t.CSV(os.Stdout)
		} else {
			err = t.Render(os.Stdout)
		}
		if err != nil {
			log.Fatalf("dacserve: %v", err)
		}
		fmt.Println()
	}
	pts := []repro.ServePoint{pt}
	emit(repro.ServeTable(pts))
	emit(repro.ServeComplianceTable(pts))

	if *scrapeOut != "" {
		path := *scrapeOut
		if !strings.HasSuffix(path, ".jsonl") {
			path += ".jsonl"
		}
		f, err := os.Create(path)
		if err != nil {
			log.Fatalf("dacserve: scrape-out: %v", err)
		}
		if err := repro.WriteScrapeJSONL(f, pt.Windows); err != nil {
			log.Fatalf("dacserve: scrape-out: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("dacserve: scrape-out: %v", err)
		}
		fmt.Fprintf(os.Stderr, "dacserve: wrote %d scrape windows to %s\n", len(pt.Windows), path)
	}

	// The sustained-throughput summary: how fast the host pushed the
	// virtual window through — the numbers dacbench gates as series.
	sec := elapsed.Seconds()
	fmt.Fprintf(os.Stderr,
		"dacserve: served %d jobs over %v of virtual time in %v of wall time (%.0f jobs/sec, %.0f events/sec host-side)\n",
		pt.Completed, pt.Makespan.Round(time.Millisecond), elapsed.Round(time.Millisecond),
		float64(pt.Completed)/sec, float64(pt.Dispatches)/sec)
	if pt.Completed != pt.Submitted {
		log.Fatalf("dacserve: drained %d of %d admitted jobs", pt.Completed, pt.Submitted)
	}
}
