// Command dacsim regenerates the figures of the paper's evaluation
// (Section IV) on the simulated DAC testbed and prints the series as
// aligned tables (or CSV).
//
// Usage:
//
//	dacsim -fig all            # every figure, paper trial count
//	dacsim -fig 7b -trials 10  # one figure
//	dacsim -fig ablations      # the DESIGN.md ablation suite
//	dacsim -fig 8 -csv         # machine-readable output
//	dacsim -fig breakdown -capture prof   # profiler captures for dacprof
//	dacsim -fig slo -scrape-out scrape    # live telemetry scrapes + SLO compliance
//	dacsim -fig scale -audit              # flight recorder + invariant engine on
//	dacsim -fig scale -audit -audit-out rec -seed 1   # recordings for dacaudit
//	dacsim -fig serve                     # online service mode: open-loop sustained ingest
//	dacsim -fig serve -rate 64 -serve-for 30s -scrape-out serve   # custom load point
//	dacsim -fig scale -cpuprofile cpu.pb.gz   # host-side pprof of the simulator itself
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro"
	"repro/internal/metrics"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 7a, 7b, 8, 9, scale, breakdown, slo, serve, ablations, all")
	trials := flag.Int("trials", 10, "trials per data point (the paper averages 10)")
	maxACs := flag.Int("max", 6, "maximum accelerator count for figures 7(a) and 7(b)")
	scaleNodes := flag.Int("scale-max", 256, "largest compute-node count for -fig scale (accelerators and jobs grow 8x)")
	serverMode := flag.String("server", "faithful", "server ablation for -fig scale/breakdown: faithful (the paper's serial pbs_server + global Maui cycle) or sharded (partitioned fast path)")
	jitter := flag.Float64("jitter", 0, "fabric latency jitter fraction (e.g. 0.1); 0 keeps runs exactly deterministic")
	parallel := flag.Int("parallel", 0, "independent trials run on this many OS threads (0 or <1 = all cores); output is identical at every level")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON (Perfetto-loadable) of every simulated run to this file")
	captureOut := flag.String("capture", "", "with -fig breakdown: write one profiler capture (JSONL, readable by dacprof) per cluster size to PREFIX-<nodes>.jsonl")
	scrapeOut := flag.String("scrape-out", "", "with -fig slo: write the scrape series (JSONL, readable by dacstat) and the Prometheus exposition per cluster size to PREFIX-<nodes>.jsonl / PREFIX-<nodes>.prom")
	auditOn := flag.Bool("audit", false, "with -fig scale: attach a flight recorder per ladder point, check invariants at every scheduler cycle, and capture state digests; exits non-zero on any breach")
	auditOut := flag.String("audit-out", "", "with -audit: write each point's recording (JSONL, readable by dacaudit) to PREFIX-<nodes>.jsonl")
	seed := flag.Uint64("seed", 0, "workload/jitter seed; 0 reproduces the historical figures byte for byte, distinct seeds give dacaudit -diff distinct recordings")
	showMetrics := flag.Bool("metrics", false, "print the tracer's metrics summary (span latencies, counters, gauges) after the figures")
	serveRate := flag.Float64("rate", 0, "with -fig serve: open-loop submission rate in jobs per virtual second (0 picks a per-size default)")
	serveFor := flag.Duration("serve-for", 0, "with -fig serve: virtual admission window per point (0 = 60s default)")
	cpuProfile := flag.String("cpuprofile", "", "write a host-side CPU profile (runtime/pprof) of the whole run to this file")
	memProfile := flag.String("memprofile", "", "write a host-side heap profile (runtime/pprof, after GC) to this file on exit")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatalf("dacsim: cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("dacsim: cpuprofile: %v", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				log.Fatalf("dacsim: cpuprofile: %v", err)
			}
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				log.Fatalf("dacsim: memprofile: %v", err)
			}
			runtime.GC() // report live heap, not transient garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatalf("dacsim: memprofile: %v", err)
			}
			if err := f.Close(); err != nil {
				log.Fatalf("dacsim: memprofile: %v", err)
			}
		}()
	}

	repro.SetParallelism(*parallel)
	params := repro.DefaultParams()
	params.LatencyJitter = *jitter
	params.Seed = *seed
	var tracer *repro.Tracer
	if *traceOut != "" || *showMetrics {
		tracer = repro.NewTracer()
		params.Tracer = tracer
	}
	emit := func(t *metrics.Table) {
		var err error
		if *csv {
			err = t.CSV(os.Stdout)
		} else {
			err = t.Render(os.Stdout)
		}
		if err != nil {
			log.Fatalf("dacsim: %v", err)
		}
		fmt.Println()
	}

	run7a := func() {
		pts, err := repro.Fig7a(params, *maxACs, *trials)
		if err != nil {
			log.Fatalf("dacsim: figure 7(a): %v", err)
		}
		emit(repro.Fig7aTable(pts))
	}
	run7b := func() {
		pts, err := repro.Fig7b(params, *maxACs, *trials)
		if err != nil {
			log.Fatalf("dacsim: figure 7(b): %v", err)
		}
		emit(repro.Fig7bTable(pts))
	}
	run8 := func() {
		pts, err := repro.Fig8(params, []int{0, 16, 20}, *trials)
		if err != nil {
			log.Fatalf("dacsim: figure 8: %v", err)
		}
		emit(repro.Fig8Table(pts))
	}
	run9 := func() {
		pts, err := repro.Fig9(params, *trials)
		if err != nil {
			log.Fatalf("dacsim: figure 9: %v", err)
		}
		emit(repro.Fig9Table(pts))
	}
	mode, err := repro.ParseServerMode(*serverMode)
	if err != nil {
		log.Fatalf("dacsim: %v", err)
	}
	// The sharded ladder's axis continues past 256 nodes; the faithful
	// axis stays the paper-era ladder so existing figures do not move.
	ladder := func() []int {
		axis := repro.ScaleSizes
		if mode == repro.ServerSharded {
			axis = repro.ScaleSizesExtended
		}
		var sizes []int
		for _, n := range axis {
			if n <= *scaleNodes {
				sizes = append(sizes, n)
			}
		}
		if len(sizes) == 0 || sizes[len(sizes)-1] != *scaleNodes {
			sizes = append(sizes, *scaleNodes)
		}
		return sizes
	}
	runScale := func() {
		if *auditOn {
			apts, err := repro.ScaleAudited(params, ladder(), mode)
			if err != nil {
				log.Fatalf("dacsim: scale: %v", err)
			}
			pts := make([]repro.ScalePoint, len(apts))
			for i := range apts {
				pts[i] = apts[i].ScalePoint
			}
			if mode == repro.ServerSharded {
				emit(repro.ScaleShardedTable(pts))
			} else {
				emit(repro.ScaleTable(pts))
			}
			emit(repro.AuditTable(apts))
			if *auditOut != "" {
				prefix := strings.TrimSuffix(*auditOut, ".jsonl")
				for i := range apts {
					path := fmt.Sprintf("%s-%d.jsonl", prefix, apts[i].ComputeNodes)
					f, err := os.Create(path)
					if err != nil {
						log.Fatalf("dacsim: audit-out: %v", err)
					}
					if err := repro.WriteAuditRecording(f, apts[i].Events); err != nil {
						log.Fatalf("dacsim: audit-out: %v", err)
					}
					if err := f.Close(); err != nil {
						log.Fatalf("dacsim: audit-out: %v", err)
					}
					fmt.Fprintf(os.Stderr, "dacsim: wrote %d audit events to %s\n", len(apts[i].Events), path)
				}
			}
			if n := repro.AuditBreaches(apts); n != 0 {
				log.Fatalf("dacsim: audit: %d invariant breaches (see the recording for kind=breach events)", n)
			}
			return
		}
		pts, err := repro.ScaleMode(params, ladder(), mode)
		if err != nil {
			log.Fatalf("dacsim: scale: %v", err)
		}
		if mode == repro.ServerSharded {
			emit(repro.ScaleShardedTable(pts))
		} else {
			emit(repro.ScaleTable(pts))
		}
	}
	runBreakdown := func() {
		sizes := ladder()
		var capture func(int, []repro.TraceEvent)
		if *captureOut != "" {
			capture = func(n int, events []repro.TraceEvent) {
				path := fmt.Sprintf("%s-%d.jsonl", strings.TrimSuffix(*captureOut, ".jsonl"), n)
				f, err := os.Create(path)
				if err != nil {
					log.Fatalf("dacsim: capture: %v", err)
				}
				if err := repro.WriteCapture(f, events); err != nil {
					log.Fatalf("dacsim: capture: %v", err)
				}
				if err := f.Close(); err != nil {
					log.Fatalf("dacsim: capture: %v", err)
				}
				fmt.Fprintf(os.Stderr, "dacsim: wrote %d events to %s\n", len(events), path)
			}
		}
		pts, err := repro.BreakdownMode(params, sizes, mode, capture)
		if err != nil {
			log.Fatalf("dacsim: breakdown: %v", err)
		}
		emit(repro.BreakdownTable(pts))
		emit(repro.DynBreakdownTable(pts))
	}
	runSLO := func() {
		var sizes []int
		for _, n := range repro.SLOSizes {
			if n <= *scaleNodes {
				sizes = append(sizes, n)
			}
		}
		if len(sizes) == 0 || sizes[len(sizes)-1] != *scaleNodes {
			sizes = append(sizes, *scaleNodes)
		}
		pts, err := repro.SLO(params, sizes)
		if err != nil {
			log.Fatalf("dacsim: slo: %v", err)
		}
		emit(repro.SLOTable(pts))
		emit(repro.SLOComplianceTable(pts))
		if *scrapeOut != "" {
			prefix := strings.TrimSuffix(*scrapeOut, ".jsonl")
			for _, pt := range pts {
				path := fmt.Sprintf("%s-%d.jsonl", prefix, pt.ComputeNodes)
				f, err := os.Create(path)
				if err != nil {
					log.Fatalf("dacsim: scrape-out: %v", err)
				}
				if err := repro.WriteScrapeJSONL(f, pt.Windows); err != nil {
					log.Fatalf("dacsim: scrape-out: %v", err)
				}
				if err := f.Close(); err != nil {
					log.Fatalf("dacsim: scrape-out: %v", err)
				}
				fmt.Fprintf(os.Stderr, "dacsim: wrote %d scrape windows to %s\n", len(pt.Windows), path)
				promPath := fmt.Sprintf("%s-%d.prom", prefix, pt.ComputeNodes)
				if err := os.WriteFile(promPath, []byte(pt.Prom), 0o644); err != nil {
					log.Fatalf("dacsim: scrape-out: %v", err)
				}
				fmt.Fprintf(os.Stderr, "dacsim: wrote Prometheus exposition to %s\n", promPath)
			}
		}
	}
	runServe := func() {
		var sizes []int
		for _, n := range repro.ServeSizes {
			if n <= *scaleNodes {
				sizes = append(sizes, n)
			}
		}
		if len(sizes) == 0 || sizes[len(sizes)-1] != *scaleNodes {
			sizes = append(sizes, *scaleNodes)
		}
		pts, err := repro.Serve(params, sizes, mode, *serveRate, *serveFor)
		if err != nil {
			log.Fatalf("dacsim: serve: %v", err)
		}
		emit(repro.ServeTable(pts))
		emit(repro.ServeComplianceTable(pts))
		if *scrapeOut != "" {
			prefix := strings.TrimSuffix(*scrapeOut, ".jsonl")
			for _, pt := range pts {
				path := fmt.Sprintf("%s-%d.jsonl", prefix, pt.ComputeNodes)
				f, err := os.Create(path)
				if err != nil {
					log.Fatalf("dacsim: scrape-out: %v", err)
				}
				if err := repro.WriteScrapeJSONL(f, pt.Windows); err != nil {
					log.Fatalf("dacsim: scrape-out: %v", err)
				}
				if err := f.Close(); err != nil {
					log.Fatalf("dacsim: scrape-out: %v", err)
				}
				fmt.Fprintf(os.Stderr, "dacsim: wrote %d scrape windows to %s\n", len(pt.Windows), path)
			}
		}
	}
	runAblations := func() {
		dp, err := repro.AblationDynPriority(params, 16, 1)
		if err != nil {
			log.Fatalf("dacsim: dyn-priority ablation: %v", err)
		}
		t := &metrics.Table{
			Title:   "Ablation: top-priority vs plain-FIFO dynamic requests (16 jobs on load) [ms]",
			Headers: []string{"policy", "dyn_request_latency"},
		}
		t.AddRow("top priority (paper)", metrics.Ms(dp.TopPriority))
		t.AddRow("plain FIFO", metrics.Ms(dp.PlainFIFO))
		emit(t)

		cg, err := repro.AblationCollectiveGet(params, 3, 1)
		if err != nil {
			log.Fatalf("dacsim: collective ablation: %v", err)
		}
		t = &metrics.Table{
			Title:   "Ablation: collective vs individual AC_Get (3 compute nodes, 1 AC each) [ms]",
			Headers: []string{"mode", "time_until_all_nodes_served"},
		}
		t.AddRow("collective (1 request)", metrics.Ms(cg.Collective))
		t.AddRow("individual (serialized)", metrics.Ms(cg.Individual))
		emit(t)

		dv, err := repro.AblationDynamicVsStatic(params, 4)
		if err != nil {
			log.Fatalf("dacsim: dynamic-vs-static ablation: %v", err)
		}
		t = &metrics.Table{
			Title:   "Ablation: dynamic allocation vs static-peak baseline (4 phased jobs)",
			Headers: []string{"policy", "makespan_ms", "accelerator_seconds"},
		}
		t.AddRow("static peak", metrics.Ms(dv.StaticMakespan), fmt.Sprintf("%.3f", dv.StaticACSeconds))
		t.AddRow("dynamic", metrics.Ms(dv.DynamicMakespan), fmt.Sprintf("%.3f", dv.DynamicACSeconds))
		emit(t)

		bf, err := repro.AblationBackfill(params, 16, 6)
		if err != nil {
			log.Fatalf("dacsim: backfill ablation: %v", err)
		}
		t = &metrics.Table{
			Title:   "Ablation: EASY backfill (16 mixed jobs) [ms]",
			Headers: []string{"backfill", "makespan"},
		}
		t.AddRow("on", metrics.Ms(bf.On))
		t.AddRow("off", metrics.Ms(bf.Off))
		emit(t)

		sp, err := repro.AblationSchedulerPortability(params, 12, 6)
		if err != nil {
			log.Fatalf("dacsim: scheduler ablation: %v", err)
		}
		t = &metrics.Table{
			Title:   "Ablation: Maui vs TORQUE basic FIFO scheduler (portability, Section V) [ms]",
			Headers: []string{"scheduler", "workload_makespan", "dyn_request_latency"},
		}
		t.AddRow("maui", metrics.Ms(sp.MauiMakespan), metrics.Ms(sp.MauiDynLatency))
		t.AddRow("pbs_sched (FIFO)", metrics.Ms(sp.FIFOMakespan), metrics.Ms(sp.FIFODynLatency))
		emit(t)

		db, err := repro.AblationDoubleBuffer(params, 8)
		if err != nil {
			log.Fatalf("dacsim: double-buffer ablation: %v", err)
		}
		t = &metrics.Table{
			Title:   "Ablation: double buffering, 8 x 8 MiB chunks on one accelerator [ms]",
			Headers: []string{"mode", "elapsed"},
		}
		t.AddRow("sequential", metrics.Ms(db.Sequential))
		t.AddRow("double buffered", metrics.Ms(db.Overlapped))
		emit(t)

		pa, err := repro.AblationPartialAlloc(params)
		if err != nil {
			log.Fatalf("dacsim: partial ablation: %v", err)
		}
		t = &metrics.Table{
			Title:   "Ablation: partial allocation, AC_Get(5) with 2 free",
			Headers: []string{"policy", "granted"},
		}
		t.AddRow("reject when short (paper)", fmt.Sprint(pa.GrantedWithoutPartial))
		t.AddRow("partial allocation (outlook)", fmt.Sprint(pa.GrantedWithPartial))
		emit(t)
	}

	if mode != repro.ServerFaithful && *fig != "scale" && *fig != "breakdown" && *fig != "serve" {
		log.Fatalf("dacsim: -server %s requires -fig scale, breakdown, or serve", mode)
	}
	if *captureOut != "" && *fig != "breakdown" {
		log.Fatalf("dacsim: -capture requires -fig breakdown (per-size private tracers)")
	}
	if *scrapeOut != "" && *fig != "slo" && *fig != "serve" {
		log.Fatalf("dacsim: -scrape-out requires -fig slo or -fig serve (per-size private registries)")
	}
	if (*serveRate != 0 || *serveFor != 0) && *fig != "serve" {
		log.Fatalf("dacsim: -rate/-serve-for require -fig serve")
	}
	if *auditOn && *fig != "scale" {
		log.Fatalf("dacsim: -audit requires -fig scale (per-point flight recorders)")
	}
	if *auditOut != "" && !*auditOn {
		log.Fatalf("dacsim: -audit-out requires -audit")
	}
	start := time.Now()
	switch *fig {
	case "7a":
		run7a()
	case "7b":
		run7b()
	case "8":
		run8()
	case "9":
		run9()
	case "scale":
		runScale()
	case "breakdown":
		runBreakdown()
	case "slo":
		runSLO()
	case "serve":
		runServe()
	case "ablations":
		runAblations()
	case "all":
		run7a()
		run7b()
		run8()
		run9()
		runAblations()
	default:
		log.Fatalf("dacsim: unknown figure %q (want 7a, 7b, 8, 9, scale, breakdown, slo, serve, ablations, all)", *fig)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatalf("dacsim: %v", err)
		}
		if err := tracer.WriteChrome(f); err != nil {
			log.Fatalf("dacsim: write trace: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("dacsim: write trace: %v", err)
		}
		fmt.Fprintf(os.Stderr, "dacsim: wrote %d trace events to %s\n", len(tracer.Events()), *traceOut)
	}
	if *showMetrics {
		if err := tracer.WriteSummary(os.Stdout); err != nil {
			log.Fatalf("dacsim: metrics summary: %v", err)
		}
	}
	fmt.Fprintf(os.Stderr, "dacsim: done in %v of wall time\n", time.Since(start).Round(time.Millisecond))
}
