// Command dactrace generates synthetic workload traces and replays
// them against the simulated cluster, reporting queueing statistics.
//
// Usage:
//
//	dactrace -gen -jobs 50 -seed 7 -out trace.jsonl
//	dactrace -replay -in trace.jsonl -cns 2 -acs 4
//	dactrace -gen -jobs 20 -replay   # generate and replay in one go
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro"
	"repro/internal/metrics"
)

func main() {
	gen := flag.Bool("gen", false, "generate a trace")
	replay := flag.Bool("replay", false, "replay a trace against the simulated cluster")
	jobs := flag.Int("jobs", 20, "jobs to generate")
	seed := flag.Uint64("seed", 7, "generator seed")
	mean := flag.Duration("mean", 50*time.Millisecond, "mean interarrival time")
	in := flag.String("in", "", "trace file to replay (default: the generated one)")
	swf := flag.String("swf", "", "Standard Workload Format file to replay instead of a JSON trace")
	scale := flag.Float64("scale", 1.0, "time-compression factor applied to loaded traces")
	out := flag.String("out", "", "file to write the generated trace to (default: stdout)")
	cns := flag.Int("cns", 2, "compute nodes")
	acs := flag.Int("acs", 4, "accelerators")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON (Perfetto-loadable) of the replay to this file")
	showMetrics := flag.Bool("metrics", false, "print the tracer's metrics summary (span latencies, counters, gauges) after the replay")
	flag.Parse()

	if *swf != "" {
		*replay = true
	}
	if !*gen && !*replay {
		log.Fatal("dactrace: pass -gen, -replay, or both")
	}

	var trace []repro.TraceEntry
	if *gen {
		s := repro.NewSimulation()
		g := repro.NewWorkloadGenerator(s, *seed, *mean, repro.DefaultWorkloadClasses())
		trace = repro.RecordTrace(g, *jobs)
		w := os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				log.Fatalf("dactrace: %v", err)
			}
			defer f.Close()
			w = f
		}
		if !*replay || *out != "" {
			if err := repro.SaveTrace(w, trace); err != nil {
				log.Fatalf("dactrace: %v", err)
			}
		}
	}
	if !*replay {
		return
	}
	switch {
	case *swf != "":
		f, err := os.Open(*swf)
		if err != nil {
			log.Fatalf("dactrace: %v", err)
		}
		defer f.Close()
		params := repro.DefaultParams()
		loaded, err := repro.ParseSWF(f, params.CoresPerNode)
		if err != nil {
			log.Fatalf("dactrace: %v", err)
		}
		trace = loaded
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			log.Fatalf("dactrace: %v", err)
		}
		defer f.Close()
		loaded, err := repro.LoadTrace(f)
		if err != nil {
			log.Fatalf("dactrace: %v", err)
		}
		trace = loaded
	}
	if *scale != 1.0 {
		trace = repro.ScaleTrace(trace, *scale)
	}
	if len(trace) == 0 {
		log.Fatal("dactrace: no trace to replay (use -gen, -in, or -swf)")
	}

	params := repro.DefaultParams()
	params.ComputeNodes = *cns
	params.Accelerators = *acs
	var tracer *repro.Tracer
	if *traceOut != "" || *showMetrics {
		tracer = repro.NewTracer()
		params.Tracer = tracer
	}
	var queued, ran metrics.Sample
	var makespan time.Duration
	var cnUtil, acUtil float64
	err := repro.RunCluster(params, func(c *repro.Cluster, client *repro.Client) {
		t0 := c.Sim.Now()
		ids, err := repro.ReplayTrace(c.Sim, client, trace)
		if err != nil {
			log.Fatalf("dactrace: %v", err)
		}
		var last time.Duration
		for _, id := range ids {
			info, err := client.Wait(id)
			if err != nil {
				log.Fatalf("dactrace: wait %s: %v", id, err)
			}
			queued.Add(info.StartedAt - info.SubmittedAt)
			ran.Add(info.CompletedAt - info.StartedAt)
			if info.CompletedAt > last {
				last = info.CompletedAt
			}
		}
		makespan = last - t0
		cnUtil, acUtil = c.Server.ClusterUtilization(makespan)
	})
	if err != nil {
		log.Fatalf("dactrace: %v", err)
	}

	t := &metrics.Table{
		Title:   fmt.Sprintf("replay of %d jobs on %d CN / %d AC", len(trace), *cns, *acs),
		Headers: []string{"metric", "mean_ms", "min_ms", "max_ms"},
	}
	t.AddRow("queue wait", metrics.Ms(queued.Mean()), metrics.Ms(queued.Min()), metrics.Ms(queued.Max()))
	t.AddRow("runtime", metrics.Ms(ran.Mean()), metrics.Ms(ran.Min()), metrics.Ms(ran.Max()))
	t.AddRow("makespan", metrics.Ms(makespan), "", "")
	t.AddRow("compute util", fmt.Sprintf("%.1f%%", 100*cnUtil), "", "")
	t.AddRow("accel util", fmt.Sprintf("%.1f%%", 100*acUtil), "", "")
	if err := t.Render(os.Stdout); err != nil {
		log.Fatalf("dactrace: %v", err)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatalf("dactrace: %v", err)
		}
		if err := tracer.WriteChrome(f); err != nil {
			log.Fatalf("dactrace: write trace: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("dactrace: write trace: %v", err)
		}
		fmt.Fprintf(os.Stderr, "dactrace: wrote %d trace events to %s\n", len(tracer.Events()), *traceOut)
	}
	if *showMetrics {
		fmt.Println()
		if err := tracer.WriteSummary(os.Stdout); err != nil {
			log.Fatalf("dactrace: metrics summary: %v", err)
		}
	}
}
