package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestVersionHandshake(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-V=full"}, &out, &errb); code != 0 {
		t.Fatalf("-V=full exit %d, stderr %q", code, errb.String())
	}
	// The go command parses `<name> version <fingerprint...>`.
	fields := strings.Fields(out.String())
	if len(fields) < 3 || fields[0] != "daclint" || fields[1] != "version" {
		t.Fatalf("-V=full output %q does not match the vet tool-ID contract", out.String())
	}
}

func TestFlagsHandshake(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-flags"}, &out, &errb); code != 0 {
		t.Fatalf("-flags exit %d", code)
	}
	var flags []any
	if err := json.Unmarshal([]byte(out.String()), &flags); err != nil || len(flags) != 0 {
		t.Fatalf("-flags output %q is not an empty JSON flag list (%v)", out.String(), err)
	}
}

func TestHelpListsAnalyzers(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"help"}, &out, &errb); code != 0 {
		t.Fatalf("help exit %d", code)
	}
	for _, name := range []string{"walltime", "seededrand", "maporder", "lockdiscipline", "vtctx", "spanbalance", "lint:ignore"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("help output missing %q", name)
		}
	}
}

// writeVetCfg builds a unitchecker config for a single-file package
// with no imports, the smallest unit the protocol can express.
func writeVetCfg(t *testing.T, dir, importPath, src string, vetxOnly bool) string {
	t.Helper()
	goFile := filepath.Join(dir, "unit.go")
	if err := os.WriteFile(goFile, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := vetConfig{
		ID:         importPath,
		Compiler:   "gc",
		Dir:        dir,
		ImportPath: importPath,
		GoFiles:    []string{goFile},
		GoVersion:  "go1.22",
		VetxOnly:   vetxOnly,
		VetxOutput: filepath.Join(dir, "vet.out"),
	}
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgFile := filepath.Join(dir, "vet.cfg")
	if err := os.WriteFile(cfgFile, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return cfgFile
}

const actorSrc = `package pbs

func spawn(done chan struct{}) {
	go func() { close(done) }()
}
`

func TestVetUnitReportsFinding(t *testing.T) {
	dir := t.TempDir()
	// The import path places the unit inside an actor package, so the
	// raw goroutine must trip vtctx.
	cfgFile := writeVetCfg(t, dir, "repro/internal/pbs", actorSrc, false)
	var out, errb strings.Builder
	code := run([]string{cfgFile}, &out, &errb)
	if code != 2 {
		t.Fatalf("exit %d, want 2; stderr: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "vtctx") || !strings.Contains(errb.String(), "unit.go:4:2") {
		t.Errorf("diagnostic not positioned as file:line:col: %q", errb.String())
	}
	if _, err := os.Stat(filepath.Join(dir, "vet.out")); err != nil {
		t.Errorf("vetx output file not written: %v", err)
	}
}

func TestVetUnitVetxOnlySkipsAnalysis(t *testing.T) {
	dir := t.TempDir()
	cfgFile := writeVetCfg(t, dir, "repro/internal/pbs", actorSrc, true)
	var out, errb strings.Builder
	if code := run([]string{cfgFile}, &out, &errb); code != 0 {
		t.Fatalf("VetxOnly exit %d, stderr %s", code, errb.String())
	}
	if errb.Len() != 0 {
		t.Errorf("VetxOnly produced diagnostics: %s", errb.String())
	}
	if _, err := os.Stat(filepath.Join(dir, "vet.out")); err != nil {
		t.Errorf("vetx output file not written: %v", err)
	}
}

func TestStandaloneModule(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module tmpmod\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(dir, "simstuff"), 0o755); err != nil {
		t.Fatal(err)
	}
	src := `package simstuff

import "time"

func Stamp() time.Time { return time.Now() }
`
	if err := os.WriteFile(filepath.Join(dir, "simstuff", "s.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb strings.Builder
	code := run([]string{dir}, &out, &errb)
	if code != 2 {
		t.Fatalf("exit %d, want 2; stdout %s stderr %s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "walltime") {
		t.Errorf("standalone run missed the walltime finding: %s", out.String())
	}

	// Annotating the finding with a reasoned directive makes the same
	// module pass clean.
	fixed := `package simstuff

import "time"

func Stamp() time.Time {
	//lint:ignore walltime host-side timestamp for log file names only
	return time.Now()
}
`
	if err := os.WriteFile(filepath.Join(dir, "simstuff", "s.go"), []byte(fixed), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	errb.Reset()
	if code := run([]string{dir}, &out, &errb); code != 0 {
		t.Fatalf("annotated module exit %d; stdout %s stderr %s", code, out.String(), errb.String())
	}
}

// TestStandaloneJSON pins the -json report schema: per-analyzer
// counts with zeroes for quiet analyzers, the findings list, and the
// CFG/runtime stats the CI lint job archives.
func TestStandaloneJSON(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module tmpmod\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(dir, "simstuff"), 0o755); err != nil {
		t.Fatal(err)
	}
	src := `package simstuff

import "time"

func Stamp() time.Time { return time.Now() }
`
	if err := os.WriteFile(filepath.Join(dir, "simstuff", "s.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb strings.Builder
	if code := run([]string{"-json", dir}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2; stdout %s stderr %s", code, out.String(), errb.String())
	}
	var rep jsonReport
	if err := json.Unmarshal([]byte(out.String()), &rep); err != nil {
		t.Fatalf("output is not the report schema: %v\n%s", err, out.String())
	}
	if rep.Packages != 1 {
		t.Errorf("packages = %d, want 1", rep.Packages)
	}
	if rep.Analyzers["walltime"] != 1 {
		t.Errorf("analyzers[walltime] = %d, want 1", rep.Analyzers["walltime"])
	}
	// Quiet analyzers must still be present, with explicit zeroes.
	for _, name := range []string{"poolbalance", "handlerexhaustive", "actorown", "ignore"} {
		if n, ok := rep.Analyzers[name]; !ok || n != 0 {
			t.Errorf("analyzers[%s] = %d, present=%v; want an explicit 0", name, n, ok)
		}
	}
	if len(rep.Findings) != 1 || rep.Findings[0].Analyzer != "walltime" || rep.Findings[0].Line != 5 {
		t.Errorf("findings = %+v, want one walltime finding at line 5", rep.Findings)
	}
	if rep.ElapsedMS <= 0 {
		t.Errorf("elapsed_ms = %v, want > 0", rep.ElapsedMS)
	}
}
