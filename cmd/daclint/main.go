// Command daclint statically enforces the simulator's determinism
// and virtual-time invariants (see internal/lint for the analyzer
// suite). It runs two ways:
//
// As a vet tool, speaking the go command's unitchecker protocol, so
// findings appear at `go vet` time with standard file:line positions
// and build caching:
//
//	go build -o bin/daclint ./cmd/daclint
//	go vet -vettool=$(pwd)/bin/daclint ./...
//
// Or standalone over a module directory, loading packages from source
// (no build cache required):
//
//	daclint .
//
// Standalone mode also has a machine-readable form for CI archival:
//
//	daclint -json .
//
// which emits one JSON object with every finding, per-analyzer
// counts (zeroes included, so the schema is stable), CFG-build
// statistics from the flow-sensitive analyzers, and total runtime.
//
// False positives are suppressed in place with a reasoned directive:
//
//	//lint:ignore walltime host-side progress logging, not sim time
//
// The protocol implementation mirrors x/tools' unitchecker on the
// standard library alone: the go command invokes the tool with
// -V=full (version fingerprint for caching), -flags (supported
// flags), and then once per package with a JSON config file naming
// the sources and the export data of every import.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
	"repro/internal/lint/cfg"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		usage(stderr)
		return 2
	}
	switch args[0] {
	case "-V=full":
		// The go command fingerprints the tool to key its vet cache;
		// the executable hash invalidates cached results on rebuild.
		fmt.Fprintf(stdout, "daclint version devel buildID=%x\n", selfHash())
		return 0
	case "-flags":
		// No tool-specific flags: report an empty flag set so the go
		// command passes none through.
		fmt.Fprintln(stdout, "[]")
		return 0
	case "help", "-h", "-help", "--help":
		usage(stdout)
		return 0
	case "-json":
		if len(args) < 2 {
			usage(stderr)
			return 2
		}
		return runStandaloneJSON(args[1], stdout, stderr)
	}
	if strings.HasSuffix(args[0], ".cfg") {
		return runVetUnit(args[0], stderr)
	}
	return runStandalone(args[0], stdout, stderr)
}

func usage(w io.Writer) {
	fmt.Fprintf(w, "daclint enforces the simulator's determinism and virtual-time invariants.\n\n")
	fmt.Fprintf(w, "usage:\n")
	fmt.Fprintf(w, "  go vet -vettool=/path/to/daclint ./...   # vet-tool mode (preferred)\n")
	fmt.Fprintf(w, "  daclint <module-dir>                     # standalone, loads from source\n")
	fmt.Fprintf(w, "  daclint -json <module-dir>               # standalone, JSON report on stdout\n\n")
	fmt.Fprintf(w, "analyzers:\n")
	for _, a := range lint.Suite() {
		fmt.Fprintf(w, "  %-15s %s\n", a.Name, a.Doc)
	}
	fmt.Fprintf(w, "\nsuppress a finding with a reasoned directive on or above its line:\n")
	fmt.Fprintf(w, "  //lint:ignore <analyzer>[,<analyzer>...] <reason>\n")
}

func selfHash() []byte {
	exe, err := os.Executable()
	if err != nil {
		return []byte("unknown")
	}
	f, err := os.Open(exe)
	if err != nil {
		return []byte("unknown")
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return []byte("unknown")
	}
	return h.Sum(nil)[:16]
}

// vetConfig is the package description the go command writes for each
// vet invocation (cmd/go/internal/work's vetConfig, as consumed by
// x/tools' unitchecker).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	GoVersion                 string
	SucceedOnTypecheckFailure bool
}

// runVetUnit analyzes the single package described by cfgPath,
// type-checking its sources against the export data the go command
// already built for every dependency.
func runVetUnit(cfgPath string, stderr io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(stderr, "daclint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "daclint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// The suite passes no facts between packages, but the go command
	// expects the output file of every vet action to exist.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("daclint: no facts\n"), 0o666); err != nil {
			fmt.Fprintf(stderr, "daclint: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		// Dependency-only invocation: nothing to diagnose here.
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(stderr, "daclint: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	gcImp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := mappedImporter{mapping: cfg.ImportMap, under: gcImp}
	info := analysis.NewInfo()
	conf := types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor(compiler, runtime.GOARCH),
		GoVersion: cfg.GoVersion,
		Error:     func(error) {}, // collect just the first via Check's return
	}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(stderr, "daclint: type-checking %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	pkg := &lint.Package{Path: cfg.ImportPath, Fset: fset, Files: files, Types: tpkg, Info: info}
	diags, err := lint.Run(pkg, lint.Suite())
	if err != nil {
		fmt.Fprintf(stderr, "daclint: %v\n", err)
		return 1
	}
	printDiags(stderr, fset, diags)
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// mappedImporter resolves source-level import paths through the
// config's ImportMap (vendoring, test variants) before consulting the
// compiler's export data.
type mappedImporter struct {
	mapping map[string]string
	under   types.Importer
}

func (m mappedImporter) Import(path string) (*types.Package, error) {
	if canon, ok := m.mapping[path]; ok {
		path = canon
	}
	return m.under.Import(path)
}

// runStandalone loads every package of the module rooted at dir from
// source and reports suite findings on stdout.
func runStandalone(dir string, stdout, stderr io.Writer) int {
	pkgs, err := lint.LoadModule(dir)
	if err != nil {
		fmt.Fprintf(stderr, "daclint: %v\n", err)
		return 1
	}
	total := 0
	for _, pkg := range pkgs {
		diags, err := lint.Run(pkg, lint.Suite())
		if err != nil {
			fmt.Fprintf(stderr, "daclint: %v\n", err)
			return 1
		}
		printDiags(stdout, pkg.Fset, diags)
		total += len(diags)
	}
	if total > 0 {
		return 2
	}
	return 0
}

func printDiags(w io.Writer, fset *token.FileSet, diags []analysis.Diagnostic) {
	for _, d := range diags {
		p := fset.Position(d.Pos)
		fmt.Fprintf(w, "%s:%d:%d: %s: %s\n", relName(p.Filename), p.Line, p.Column, d.Category, d.Message)
	}
}

func relName(filename string) string {
	if rel, err := filepath.Rel(".", filename); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(filename)
}

// jsonReport is the machine-readable result of a standalone run, one
// object per invocation. Analyzers carries a count for every suite
// analyzer (zeroes included) plus "ignore" for malformed directives,
// so consumers can key off a stable schema.
type jsonReport struct {
	Packages  int            `json:"packages"`
	Findings  []jsonFinding  `json:"findings"`
	Analyzers map[string]int `json:"analyzers"`
	CFG       jsonCFGStats   `json:"cfg"`
	ElapsedMS float64        `json:"elapsed_ms"`
}

type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// jsonCFGStats reports the flow-sensitive analyzers' CFG construction
// work: how many function CFGs were built and the wall time spent
// building them (process-cumulative, from cfg.Stats).
type jsonCFGStats struct {
	Builds  int64   `json:"builds"`
	BuildMS float64 `json:"build_ms"`
}

// runStandaloneJSON is runStandalone with a JSON report on stdout.
// The exit code keeps the text mode's contract: 2 when there are
// findings, 0 on a clean module, 1 on operational failure.
func runStandaloneJSON(dir string, stdout, stderr io.Writer) int {
	start := time.Now()
	pkgs, err := lint.LoadModule(dir)
	if err != nil {
		fmt.Fprintf(stderr, "daclint: %v\n", err)
		return 1
	}
	suite := lint.Suite()
	rep := jsonReport{
		Packages:  len(pkgs),
		Findings:  []jsonFinding{},
		Analyzers: map[string]int{"ignore": 0},
	}
	for _, a := range suite {
		rep.Analyzers[a.Name] = 0
	}
	for _, pkg := range pkgs {
		diags, err := lint.Run(pkg, suite)
		if err != nil {
			fmt.Fprintf(stderr, "daclint: %v\n", err)
			return 1
		}
		for _, d := range diags {
			p := pkg.Fset.Position(d.Pos)
			rep.Findings = append(rep.Findings, jsonFinding{
				File:     relName(p.Filename),
				Line:     p.Line,
				Col:      p.Column,
				Analyzer: d.Category,
				Message:  d.Message,
			})
			rep.Analyzers[d.Category]++
		}
	}
	builds, buildTime := cfg.Stats()
	rep.CFG = jsonCFGStats{Builds: builds, BuildMS: float64(buildTime.Microseconds()) / 1000}
	rep.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(stderr, "daclint: %v\n", err)
		return 1
	}
	if len(rep.Findings) > 0 {
		return 2
	}
	return 0
}
